package export

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
)

// tev builds a test event with the given monitor and seq.
func tev(monitor string, seq int64) event.Event {
	return event.Event{
		Seq:     seq,
		Monitor: monitor,
		Type:    event.Enter,
		Pid:     seq,
		Proc:    "Op",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Millisecond),
	}
}

// tseq builds a seq-sorted segment for one monitor covering [from, to].
func tseq(monitor string, from, to int64) event.Seq {
	var s event.Seq
	for i := from; i <= to; i++ {
		s = append(s, tev(monitor, i))
	}
	return s
}

func TestExporterDeliversAllSegments(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	exp := New(sink, Config{Buffer: 4})
	exp.Consume("a", tseq("a", 1, 5))
	exp.Consume("b", tseq("b", 6, 8))
	exp.Consume("a", nil) // empty segments are ignored
	if err := exp.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := exp.Stats()
	if st.Segments != 2 || st.Events != 8 || st.Written != 2 {
		t.Fatalf("stats = %+v, want 2 segments / 8 events / 2 written", st)
	}
	if st.DroppedSegments != 0 || st.WriteErrors != 0 {
		t.Fatalf("stats = %+v, want no drops or errors", st)
	}
	merged := sink.Events()
	if len(merged) != 8 {
		t.Fatalf("sink holds %d events, want 8", len(merged))
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged sink events invalid: %v", err)
	}
}

// blockingSink parks every write until released, to force a full
// exporter buffer.
type blockingSink struct {
	MemorySink
	gate chan struct{}
}

func (b *blockingSink) WriteSegment(seg Segment) error {
	<-b.gate
	return b.MemorySink.WriteSegment(seg)
}

func TestExporterDropPolicyCountsDrops(t *testing.T) {
	t.Parallel()
	sink := &blockingSink{gate: make(chan struct{})}
	exp := New(sink, Config{Buffer: 1, Policy: Drop})
	// One segment parks in the sink, one fills the buffer; everything
	// after that must be dropped, not block.
	for i := int64(0); i < 10; i++ {
		exp.Consume("m", tseq("m", i*10+1, i*10+3))
	}
	close(sink.gate)
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := exp.Stats()
	if st.DroppedSegments == 0 || st.DroppedEvents != 3*st.DroppedSegments {
		t.Fatalf("stats = %+v, want proportional drops under Drop policy", st)
	}
	if st.Segments+st.DroppedSegments != 10 {
		t.Fatalf("stats = %+v: accepted+dropped = %d, want 10", st, st.Segments+st.DroppedSegments)
	}
	if got := int64(len(sink.Segments())); got != st.Written {
		t.Fatalf("sink holds %d segments, stats say %d written", got, st.Written)
	}
}

func TestExporterBlockPolicyIsLossless(t *testing.T) {
	t.Parallel()
	sink := &blockingSink{gate: make(chan struct{})}
	exp := New(sink, Config{Buffer: 1, Policy: Block})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 20; i++ {
			exp.Consume("m", tseq("m", i*5+1, i*5+5))
		}
	}()
	select {
	case <-done:
		t.Fatal("20 segments through a 1-slot buffer did not block")
	case <-time.After(20 * time.Millisecond):
	}
	close(sink.gate)
	<-done
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := exp.Stats()
	if st.DroppedSegments != 0 || st.Written != 20 || st.Events != 100 {
		t.Fatalf("stats = %+v, want 20/100 written with zero drops", st)
	}
}

func TestExporterConsumeAfterCloseDrops(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	exp := New(sink, Config{})
	exp.Consume("m", tseq("m", 1, 2))
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	exp.Consume("m", tseq("m", 3, 4)) // must not panic or write
	if err := exp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := exp.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	st := exp.Stats()
	if st.Written != 1 || st.DroppedSegments != 1 || st.DroppedEvents != 2 {
		t.Fatalf("stats = %+v, want 1 written and the post-close segment dropped", st)
	}
}

// failingSink fails every write.
type failingSink struct{ MemorySink }

func (f *failingSink) WriteSegment(Segment) error { return fmt.Errorf("disk on fire") }

func TestExporterSurfacesWriteErrors(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var seen []error
	exp := New(&failingSink{}, Config{OnError: func(err error) {
		mu.Lock()
		seen = append(seen, err)
		mu.Unlock()
	}})
	exp.Consume("m", tseq("m", 1, 3))
	if err := exp.Flush(); err == nil {
		t.Fatal("Flush returned nil after a failed write")
	}
	// The error is sticky: every later Flush and Close keeps reporting
	// it, so no caller path (e.g. a detector's shutdown flush) can
	// swallow a failed export.
	if err := exp.Flush(); err == nil {
		t.Fatal("second Flush = nil, want the sticky write error")
	}
	if err := exp.Close(); err == nil {
		t.Fatal("Close = nil, want the sticky write error")
	}
	st := exp.Stats()
	if st.WriteErrors != 1 || st.Written != 0 {
		t.Fatalf("stats = %+v, want 1 write error and nothing written", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("OnError called %d times, want 1", len(seen))
	}
}

// countingSink wraps a WALSink-shaped sealed-file counter around a
// MemorySink so the trigger logic is testable without disk.
type countingSink struct {
	MemorySink
	sealed int
}

func (c *countingSink) SealedFiles() int { return c.sealed }

func TestExporterBackgroundCompactionTrigger(t *testing.T) {
	t.Parallel()
	sink := &countingSink{sealed: 2}
	var mu sync.Mutex
	runs := 0
	exp := New(sink, Config{
		CompactEvery: 3,
		Compact: func() error {
			mu.Lock()
			runs++
			mu.Unlock()
			return nil
		},
	})
	// Below the threshold: no compaction.
	exp.Consume("a", tseq("a", 1, 2))
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := exp.Stats(); st.Compactions != 0 {
		t.Fatalf("compaction launched below threshold: %+v", st)
	}
	// At the threshold: exactly one launch, awaited by Close.
	sink.sealed = 3
	exp.Consume("a", tseq("a", 3, 4))
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st := exp.Stats()
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 || st.Compactions != 1 || st.CompactErrors != 0 {
		t.Fatalf("runs=%d stats=%+v, want exactly one clean compaction", runs, st)
	}
}

func TestExporterCompactionErrorNotSticky(t *testing.T) {
	t.Parallel()
	sink := &countingSink{sealed: 5}
	errBoom := errors.New("boom")
	var got error
	var mu sync.Mutex
	exp := New(sink, Config{
		CompactEvery: 1,
		Compact:      func() error { return errBoom },
		OnError: func(err error) {
			mu.Lock()
			got = err
			mu.Unlock()
		},
	})
	exp.Consume("a", tseq("a", 1, 2))
	// A failed background compaction is reported and counted but must
	// not fail the export path itself.
	if err := exp.Flush(); err != nil {
		t.Fatalf("Flush poisoned by a compaction error: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("Close poisoned by a compaction error: %v", err)
	}
	if st := exp.Stats(); st.Compactions < 1 || st.CompactErrors < 1 {
		t.Fatalf("stats = %+v, want the failed compaction counted", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != errBoom {
		t.Fatalf("OnError saw %v, want %v", got, errBoom)
	}
}
