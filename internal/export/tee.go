package export

import (
	"errors"

	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// TeeSink fans every record out to several sinks — e.g. a local
// WALSink for durability plus a network shipper for fleet collection.
// Each call is delivered to every sink regardless of individual
// failures; the errors are joined. Markers and health snapshots are
// delivered only to the sinks that implement the matching optional
// extension (TeeSink itself always advertises both, so an exporter
// routes them here and the tee dispatches to whoever can store them).
// Like the sinks it wraps, a TeeSink is driven by one goroutine.
type TeeSink struct {
	sinks []Sink
}

// NewTeeSink builds a tee over the given sinks; nil entries are
// dropped.
func NewTeeSink(sinks ...Sink) *TeeSink {
	t := &TeeSink{sinks: make([]Sink, 0, len(sinks))}
	for _, s := range sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	return t
}

// WriteSegment delivers the segment to every sink.
func (t *TeeSink) WriteSegment(seg Segment) error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.WriteSegment(seg); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// WriteMarker delivers the marker to every sink implementing
// MarkerSink.
func (t *TeeSink) WriteMarker(m history.RecoveryMarker) error {
	var errs []error
	for _, s := range t.sinks {
		if ms, ok := s.(MarkerSink); ok {
			if err := ms.WriteMarker(m); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// WriteHealth delivers the snapshot to every sink implementing
// HealthSink.
func (t *TeeSink) WriteHealth(h obs.HealthRecord) error {
	var errs []error
	for _, s := range t.sinks {
		if hs, ok := s.(HealthSink); ok {
			if err := hs.WriteHealth(h); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// WriteAlert delivers the threshold alert to every sink implementing
// AlertSink.
func (t *TeeSink) WriteAlert(a obsrules.Alert) error {
	var errs []error
	for _, s := range t.sinks {
		if as, ok := s.(AlertSink); ok {
			if err := as.WriteAlert(a); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Flush flushes every sink.
func (t *TeeSink) Flush() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close closes every sink.
func (t *TeeSink) Close() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
