package export

import (
	"sync"
	"testing"

	"robustmon/internal/obs"
)

// snapCounter reads a counter from a snapshot, treating "never
// registered" as zero — the obs contract for a path that never ran.
func snapCounter(s obs.Snapshot, name string) int64 {
	v, _ := s.Counter(name)
	return v
}

// TestExporterDropAccountingMatchesMetrics drives a Drop-policy
// exporter into sustained backpressure (a parked sink, a tiny buffer,
// many concurrent producers) and asserts that the obs registry's
// by-reason drop counters agree with Stats exactly — not
// approximately. The two surfaces are fed by the same atomics, so any
// divergence is a lost or double count in the accounting itself.
// Run with -race: the producers, the writer goroutine and the
// post-close stragglers all touch the counters concurrently.
func TestExporterDropAccountingMatchesMetrics(t *testing.T) {
	t.Parallel()
	const (
		producers   = 8
		perProducer = 200
		segEvents   = 3
	)
	reg := obs.NewRegistry()
	sink := &blockingSink{gate: make(chan struct{})}
	exp := New(sink, Config{Buffer: 2, Policy: Drop, Obs: reg})

	// Phase 1: sustained "full" backpressure. The sink is parked for
	// the whole phase, so after one in-flight segment and two buffered
	// ones, every further Consume must drop with reason "full".
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := int64(p) * perProducer * segEvents
			for i := int64(0); i < perProducer; i++ {
				lo := base + i*segEvents + 1
				exp.Consume("m", tseq("m", lo, lo+segEvents-1))
			}
		}(p)
	}
	wg.Wait()
	close(sink.gate)
	if err := exp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Phase 2: "closed" drops — stragglers racing past Close.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo := int64(1_000_000 + p*segEvents)
			exp.Consume("m", tseq("m", lo, lo+segEvents-1))
		}(p)
	}
	wg.Wait()

	st := exp.Stats()
	snap := reg.Snapshot()

	// The backpressure must have been real on both sides of Close.
	if st.DroppedSegmentsFull == 0 {
		t.Fatalf("stats = %+v: no full-buffer drops — backpressure never happened", st)
	}
	if st.DroppedSegmentsClosed != producers {
		t.Fatalf("stats = %+v: %d post-close drops, want %d", st, st.DroppedSegmentsClosed, producers)
	}

	// Conservation: every produced segment was accepted or dropped-full
	// (pre-close) or dropped-closed (post-close), with proportional
	// event counts.
	if st.Segments+st.DroppedSegmentsFull != producers*perProducer {
		t.Fatalf("stats = %+v: accepted+droppedFull = %d, want %d",
			st, st.Segments+st.DroppedSegmentsFull, producers*perProducer)
	}
	if st.Events+st.DroppedEventsFull != producers*perProducer*segEvents {
		t.Fatalf("stats = %+v: event ledger does not balance", st)
	}
	if st.DroppedEventsFull != segEvents*st.DroppedSegmentsFull ||
		st.DroppedEventsClosed != segEvents*st.DroppedSegmentsClosed {
		t.Fatalf("stats = %+v: dropped events not proportional to dropped segments", st)
	}
	if st.DroppedSegments != st.DroppedSegmentsFull+st.DroppedSegmentsClosed ||
		st.DroppedEvents != st.DroppedEventsFull+st.DroppedEventsClosed {
		t.Fatalf("stats = %+v: by-reason split does not sum to the totals", st)
	}

	// The contract under test: registry counters equal Stats exactly.
	for _, c := range []struct {
		metric string
		want   int64
	}{
		{`export_dropped_segments_total{reason="full"}`, st.DroppedSegmentsFull},
		{`export_dropped_segments_total{reason="closed"}`, st.DroppedSegmentsClosed},
		{`export_dropped_events_total{reason="full"}`, st.DroppedEventsFull},
		{`export_dropped_events_total{reason="closed"}`, st.DroppedEventsClosed},
		{"export_segments_total", st.Segments},
		{"export_events_total", st.Events},
		{"export_written_total", st.Written},
	} {
		if got := snapCounter(snap, c.metric); got != c.want {
			t.Errorf("%s = %d, stats say %d — surfaces disagree", c.metric, got, c.want)
		}
	}

	// What the sink persisted is what the stats say was written.
	if got := int64(len(sink.Segments())); got != st.Written {
		t.Errorf("sink holds %d segments, stats say %d written", got, st.Written)
	}
}
