package netexport

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/export/index"
	"robustmon/internal/obs"
)

// CollectorConfig parameterises a Collector.
type CollectorConfig struct {
	// Dir is the fleet root. Each origin gets Dir/<origin>/ holding its
	// own WAL files, trace index and resume state — a directory every
	// existing offline tool (montrace, SeekReader, the compactor)
	// understands unchanged.
	Dir string
	// AckEvery flushes the origin's WAL and acknowledges after this
	// many applied records (default 64). Smaller trims producer buffers
	// faster; larger amortises fsyncs. A producer FLUSH always forces
	// an immediate flush-and-ack regardless.
	AckEvery int
	// MaxFileBytes and RotateEvery configure each origin's WALSink
	// (zero: export defaults).
	MaxFileBytes int64
	RotateEvery  time.Duration
	// NoIndex disables the per-origin trace-index maintainer.
	NoIndex bool
	// CompactEvery, together with Compact, arms per-origin background
	// compaction: once an origin's sink has sealed CompactEvery rotated
	// files since the last pass for that origin, Compact runs against
	// the origin's directory on its own goroutine — one in flight per
	// origin at a time, so a slow pass never stacks. Zero (or a nil
	// Compact) disables.
	CompactEvery int
	// Compact is the per-origin compaction to run when CompactEvery
	// triggers — typically a compact.Dir closure. It must leave the
	// newest file alone (compact.Config.KeepNewest >= 1, the default):
	// the origin's sink is live and appending to it.
	Compact func(dir string) error
	// Obs, when set, instruments the collector: per-origin
	// collect_records_total{origin="x"}, collect_dup_records_total and
	// collect_durable_seq gauges, plus process-wide
	// collect_conns_total and the collect_active_origins gauge. The
	// same registry can back obs.StartServer for scraping.
	Obs *obs.Registry
}

// Collector is the fleet-mode server: it accepts producer
// connections, resume-handshakes each one against the origin's
// durable state, applies record frames to the origin's WALSink, and
// acknowledges durability. One connection per origin at a time; one
// goroutine per connection.
type Collector struct {
	cfg CollectorConfig

	mu      sync.Mutex
	origins map[string]*originState
	closed  bool

	lMu       sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{} // live producer connections
	wg        sync.WaitGroup
	compactWG sync.WaitGroup // in-flight per-origin compactions

	connsTotal *obs.Counter
	actives    *obs.Gauge
}

// originState is one origin's server-side stack and resume cursor.
type originState struct {
	mu      sync.Mutex
	dir     string
	sink    *export.WALSink
	maint   *index.Maintainer
	durable uint64 // persisted resume point
	applied uint64 // durable + records applied since the last flush
	pending int    // records applied since the last flush-and-ack
	active  bool   // a connection currently owns this origin

	// Background-compaction scheduling, guarded by mu like the sink it
	// watches: floor is the sealed-file count right after the last pass
	// (its incompressible remainder — only CompactEvery NEW files on
	// top justify another), compacting keeps passes one-at-a-time,
	// done marks a finished pass whose floor awaits refresh.
	compacting   bool
	compactDone  bool
	compactFloor int

	// Liveness cursors for the fleet health timeline (moncollect's
	// staleness rules read them through Activity): when the last
	// record frame applied, how many have, and the horizon and capture
	// instant of the newest health snapshot among them.
	lastRecord    time.Time
	applied64     int64
	lastHealthSeq int64
	lastHealthAt  time.Time

	records     *obs.Counter
	dups        *obs.Counter
	compactions *obs.Counter
	compactErrs *obs.Counter
	durGa       *obs.Gauge
}

// NewCollector creates the fleet root and returns a collector ready
// to Serve.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 64
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("netexport: create fleet root: %w", err)
	}
	c := &Collector{
		cfg:     cfg,
		origins: make(map[string]*originState),
		conns:   make(map[net.Conn]struct{}),
	}
	if reg := cfg.Obs; reg != nil {
		c.connsTotal = reg.Counter("collect_conns_total")
		c.actives = reg.Gauge("collect_active_origins")
	}
	return c, nil
}

// Serve accepts producer connections on l until the collector closes
// (or the listener fails). It blocks; run it on its own goroutine
// when serving multiple listeners.
func (c *Collector) Serve(l net.Listener) error {
	c.lMu.Lock()
	if c.isClosed() {
		c.lMu.Unlock()
		l.Close()
		return fmt.Errorf("netexport: collector closed")
	}
	c.listeners = append(c.listeners, l)
	c.lMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if c.isClosed() {
				return nil
			}
			return err
		}
		c.lMu.Lock()
		c.conns[conn] = struct{}{}
		c.lMu.Unlock()
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				c.lMu.Lock()
				delete(c.conns, conn)
				c.lMu.Unlock()
			}()
			c.handle(conn)
		}()
	}
}

func (c *Collector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close stops accepting, waits for in-flight connections to unwind
// (each flushes its origin durable on teardown), and closes every
// origin's sink.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.lMu.Lock()
	for _, l := range c.listeners {
		l.Close()
	}
	// Sever live producer connections too: a handler blocked mid-read
	// would otherwise stall Close forever. Producers treat the sever
	// like any partition — buffer and resume against the next
	// collector incarnation.
	for conn := range c.conns {
		conn.Close()
	}
	c.lMu.Unlock()
	c.wg.Wait()
	// In-flight compactions next: they rewrite origin directories and
	// must unwind before the sinks close underneath them.
	c.compactWG.Wait()
	var firstErr error
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.origins {
		st.mu.Lock()
		if err := st.flushLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := st.sink.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		st.mu.Unlock()
	}
	return firstErr
}

// FleetDirName is the reserved subdirectory of the fleet root where
// the collector's own fleet-level timeline lands (moncollect's fleet
// health records and staleness alerts). Producers cannot claim it as
// an origin, so the fleet timeline never interleaves with a producer's
// WAL.
const FleetDirName = "_fleet"

// origin returns (creating on first contact) the named origin's
// state.
func (c *Collector) origin(name string) (*originState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("netexport: collector closed")
	}
	if name == FleetDirName {
		return nil, fmt.Errorf("netexport: origin %q is reserved for the fleet timeline", name)
	}
	if st, ok := c.origins[name]; ok {
		return st, nil
	}
	dir := filepath.Join(c.cfg.Dir, name)
	walCfg := export.WALConfig{
		MaxFileBytes: c.cfg.MaxFileBytes,
		RotateEvery:  c.cfg.RotateEvery,
		Obs:          c.cfg.Obs,
	}
	st := &originState{dir: dir, durable: loadShipState(dir)}
	st.applied = st.durable
	if !c.cfg.NoIndex {
		st.maint = index.NewMaintainer(dir)
		walCfg.OnSeal = []export.SealedSink{st.maint}
	}
	sink, err := export.NewWALSink(dir, walCfg)
	if err != nil {
		return nil, err
	}
	st.sink = sink
	if reg := c.cfg.Obs; reg != nil {
		st.records = reg.Counter(`collect_records_total{origin="` + name + `"}`)
		st.dups = reg.Counter(`collect_dup_records_total{origin="` + name + `"}`)
		st.compactions = reg.Counter(`collect_compactions_total{origin="` + name + `"}`)
		st.compactErrs = reg.Counter(`collect_compact_errors_total{origin="` + name + `"}`)
		st.durGa = reg.Gauge(`collect_durable_seq{origin="` + name + `"}`)
		st.durGa.Set(int64(st.durable))
	}
	c.origins[name] = st
	return st, nil
}

// flushLocked makes the origin's applied records durable and advances
// the persisted resume point. Caller holds st.mu.
func (st *originState) flushLocked() error {
	if st.applied == st.durable && st.pending == 0 {
		return nil
	}
	if err := st.sink.Flush(); err != nil {
		return err
	}
	if err := saveShipState(st.dir, st.applied); err != nil {
		return err
	}
	st.durable = st.applied
	st.pending = 0
	st.durGa.Set(int64(st.durable))
	return nil
}

// maybeCompactLocked launches the configured per-origin background
// compaction when the origin's rotated backlog has grown CompactEvery
// files past the floor left by the last pass. Caller holds st.mu; the
// compaction itself runs on its own goroutine (the connection handler
// must keep applying frames, or a long pass would backpressure the
// producer), one at a time per origin. The pass works on sealed files
// only — the sink keeps appending to the newest file throughout.
func (c *Collector) maybeCompactLocked(st *originState) {
	if c.cfg.CompactEvery <= 0 || c.cfg.Compact == nil {
		return
	}
	sealed := st.sink.SealedFiles()
	if st.compactDone {
		st.compactFloor = sealed
		st.compactDone = false
	}
	if st.compacting || sealed-st.compactFloor < c.cfg.CompactEvery {
		return
	}
	st.compacting = true
	st.compactions.Inc()
	c.compactWG.Add(1)
	go func() {
		defer c.compactWG.Done()
		err := c.cfg.Compact(st.dir)
		st.mu.Lock()
		st.compacting = false
		st.compactDone = true
		st.mu.Unlock()
		if err != nil {
			st.compactErrs.Inc()
		}
	}()
}

// CompactOrigins runs fn against every known origin's directory, each
// on its own goroutine under the same one-pass-at-a-time-per-origin
// guard as background compaction (an origin with a pass already in
// flight is skipped, not queued). This is the wall-clock retention
// timer's entry point: moncollect calls it on a ticker with a
// compact.Dir closure whose RetainBefore floor advances each tick.
// No-op after Close.
func (c *Collector) CompactOrigins(fn func(dir string) error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	states := make([]*originState, 0, len(c.origins))
	for _, st := range c.origins {
		states = append(states, st)
	}
	c.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		if st.compacting {
			st.mu.Unlock()
			continue
		}
		st.compacting = true
		st.compactions.Inc()
		c.compactWG.Add(1)
		go func(st *originState) {
			defer c.compactWG.Done()
			err := fn(st.dir)
			st.mu.Lock()
			st.compacting = false
			st.compactDone = true
			st.mu.Unlock()
			if err != nil {
				st.compactErrs.Inc()
			}
		}(st)
		st.mu.Unlock()
	}
}

// handle runs one producer connection: HELLO/WELCOME, then record
// frames until the connection drops.
func (c *Collector) handle(conn net.Conn) {
	defer conn.Close()
	c.connsTotal.Inc()
	br := bufio.NewReader(conn)
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	body, err := readFrame(br)
	if err != nil {
		return
	}
	origin, err := parseHello(body)
	if err != nil {
		_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, err.Error())))
		return
	}
	st, err := c.origin(origin)
	if err != nil {
		_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, err.Error())))
		return
	}

	// One connection owns an origin at a time: a duplicate producer
	// (misconfiguration, or a restarted producer racing its dying
	// predecessor) is refused rather than interleaved into the WAL.
	st.mu.Lock()
	if st.active {
		st.mu.Unlock()
		_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil,
			fmt.Sprintf("origin %q already connected", origin))))
		return
	}
	st.active = true
	welcome := st.durable
	st.mu.Unlock()
	c.actives.Add(1)
	defer func() {
		st.mu.Lock()
		_ = st.flushLocked() // best-effort: teardown durability
		st.active = false
		st.mu.Unlock()
		c.actives.Add(-1)
	}()

	if _, err := conn.Write(appendFrame(nil, appendWelcome(nil, welcome))); err != nil {
		return
	}
	_ = conn.SetDeadline(time.Time{})

	for {
		body, err := readFrame(br)
		if err != nil {
			return // torn frame or dropped connection: resync on reconnect
		}
		switch {
		case len(body) > 0 && body[0] == frameRecord:
			seq, rec, err := parseRecordFrame(body)
			if err != nil {
				_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, err.Error())))
				return
			}
			if err := c.apply(st, conn, seq, rec); err != nil {
				_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, err.Error())))
				return
			}
		case len(body) > 0 && body[0] == frameFlush:
			st.mu.Lock()
			err := st.flushLocked()
			durable := st.durable
			if err == nil {
				c.maybeCompactLocked(st)
			}
			st.mu.Unlock()
			if err != nil {
				_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, err.Error())))
				return
			}
			if _, err := conn.Write(appendFrame(nil, appendAck(nil, durable))); err != nil {
				return
			}
		default:
			_, _ = conn.Write(appendFrame(nil, appendErrorFrame(nil, "unexpected frame")))
			return
		}
	}
}

// apply decodes one record frame and lands it in the origin's WAL,
// acking when the cadence is due. Duplicates (a resent tail whose ack
// was lost) are skipped and counted; sequences may jump forward only
// past a lost resume-state file, where the producer's trim — which
// only ever follows an ack, which only ever follows durability — is
// the authority.
func (c *Collector) apply(st *originState, conn net.Conn, seq uint64, recBytes []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq <= st.applied {
		st.dups.Inc()
		return nil
	}
	rec, err := export.DecodeRecord(recBytes)
	if err != nil {
		return err
	}
	if err := rec.Apply(st.sink); err != nil {
		return err
	}
	st.applied = seq
	st.pending++
	st.records.Inc()
	st.lastRecord = time.Now()
	st.applied64++
	if rec.Health != nil && rec.Health.Seq >= st.lastHealthSeq {
		st.lastHealthSeq = rec.Health.Seq
		st.lastHealthAt = rec.Health.At
	}
	if st.pending >= c.cfg.AckEvery {
		if err := st.flushLocked(); err != nil {
			return err
		}
		c.maybeCompactLocked(st)
		if _, err := conn.Write(appendFrame(nil, appendAck(nil, st.durable))); err != nil {
			return fmt.Errorf("netexport: write ack: %w", err)
		}
	}
	return nil
}

// Origins lists the origins the collector has seen this process
// (sorted order not guaranteed).
func (c *Collector) Origins() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.origins))
	for name := range c.origins {
		out = append(out, name)
	}
	return out
}

// OriginActivity is one origin's liveness summary — the input to the
// fleet-level staleness rules (moncollect sets per-origin gauges from
// it and lets an obsrules engine judge them).
type OriginActivity struct {
	// Origin names the producer.
	Origin string
	// Connected reports whether a connection currently owns the origin.
	Connected bool
	// LastRecord is the collector-side wall-clock instant the last
	// record frame was applied (zero before the first this process —
	// resumed origins start stale until their producer reconnects).
	LastRecord time.Time
	// Records counts record frames applied this process (duplicates
	// excluded).
	Records int64
	// LastHealthSeq and LastHealthAt are the sequence horizon and
	// producer-side capture instant of the newest health snapshot
	// applied (zero if none yet).
	LastHealthSeq int64
	LastHealthAt  time.Time
}

// Activity reports every known origin's liveness, sorted by origin
// name so callers render a stable fleet timeline.
func (c *Collector) Activity() []OriginActivity {
	c.mu.Lock()
	states := make(map[string]*originState, len(c.origins))
	for name, st := range c.origins {
		states[name] = st
	}
	c.mu.Unlock()
	out := make([]OriginActivity, 0, len(states))
	for name, st := range states {
		st.mu.Lock()
		out = append(out, OriginActivity{
			Origin:        name,
			Connected:     st.active,
			LastRecord:    st.lastRecord,
			Records:       st.applied64,
			LastHealthSeq: st.lastHealthSeq,
			LastHealthAt:  st.lastHealthAt,
		})
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}
