package netexport

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// NetSinkConfig parameterises a NetSink.
type NetSinkConfig struct {
	// Addr is the collector's address ("host:port").
	Addr string
	// Origin names this producer on the collector — its per-origin
	// subdirectory and metric label. Must satisfy ValidOrigin. Use a
	// fresh origin per process incarnation (ship and event sequences
	// both restart at 1 on restart, and the collector's store is
	// append-only per origin).
	Origin string
	// Dial opens the transport (default net.Dial). Tests inject
	// faults.NetFault.Dial here.
	Dial func(network, addr string) (net.Conn, error)
	// BufferRecords bounds the un-acked record buffer (default 1024).
	// The buffer is the partition ride-out: records stay in it until
	// the collector acknowledges them durable, and are replayed from it
	// after a reconnect.
	BufferRecords int
	// Policy picks what happens when the buffer fills during an
	// outage: export.Block stalls the writer until space frees
	// (lossless, backpressure reaches the exporter's own buffer), and
	// export.Drop discards the new record and counts it.
	Policy export.Policy
	// RetryMin and RetryMax bound the reconnect backoff (defaults
	// 50ms and 2s); each retry doubles the delay, with ±50% jitter so
	// a fleet partition doesn't heal into a thundering herd.
	RetryMin, RetryMax time.Duration
	// FlushTimeout bounds how long Flush waits for the collector to
	// acknowledge everything accepted so far (default 30s).
	FlushTimeout time.Duration
	// Obs, when set, instruments the sink: netship_records_total,
	// netship_acked_total, netship_dropped_total (conserving: records =
	// acked + dropped + the netship_buffered gauge), plus
	// netship_reconnects_total and netship_resent_total.
	Obs *obs.Registry
}

// shipRec is one buffered record: its ship sequence and its fully
// framed record bytes (export record framing, ready for the wire and
// byte-identical to the local WAL form).
type shipRec struct {
	seq  uint64
	data []byte
}

type shipMetrics struct {
	records    *obs.Counter
	acked      *obs.Counter
	dropped    *obs.Counter
	reconnects *obs.Counter
	resent     *obs.Counter
	buffered   *obs.Gauge
}

func newShipMetrics(reg *obs.Registry) shipMetrics {
	if reg == nil {
		return shipMetrics{}
	}
	return shipMetrics{
		records:    reg.Counter("netship_records_total"),
		acked:      reg.Counter("netship_acked_total"),
		dropped:    reg.Counter("netship_dropped_total"),
		reconnects: reg.Counter("netship_reconnects_total"),
		resent:     reg.Counter("netship_resent_total"),
		buffered:   reg.Gauge("netship_buffered"),
	}
}

// NetSinkStats counts a sink's activity. Accepted = Acked + Dropped +
// Buffered always holds — the conservation law the degraded-network
// tests pin.
type NetSinkStats struct {
	// Accepted counts records submitted to the sink.
	Accepted int64
	// Acked counts records the collector acknowledged durable.
	Acked int64
	// Dropped counts records discarded: buffer-full under the Drop
	// policy, or submitted after Close.
	Dropped int64
	// Buffered is the current un-acked buffer depth.
	Buffered int
	// Reconnects counts completed resume handshakes.
	Reconnects int64
	// Resent counts records retransmitted after a reconnect.
	Resent int64
}

// NetSink ships trace records to a collector. It implements
// export.Sink plus the MarkerSink, HealthSink and AlertSink
// extensions, so it
// slots anywhere a WALSink does — an exporter's sink, one leg of an
// export.TeeSink, or WALConfig.OnSeal-adjacent plumbing. Write calls
// encode and buffer; a background shipper owns the connection,
// handshakes a resume point after every (re)connect, streams the
// buffer tail, and trims it as acks arrive. Like the sinks it stands
// in for, the write side is driven by one goroutine (the exporter's
// writer); Flush and Stats are safe from any goroutine.
type NetSink struct {
	cfg NetSinkConfig
	met shipMetrics

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []shipRec // un-acked records, ascending seq
	seq    uint64    // last assigned ship seq (first record gets 1)
	sent   uint64    // highest seq handed to the current connection
	acked  uint64    // highest collector-durable seq
	flushQ uint64    // highest seq a Flush has requested an ack for
	closed bool
	stats  NetSinkStats

	done chan struct{} // shipper goroutine exited
}

// NewNetSink validates cfg, applies defaults and starts the shipper.
// The collector does not need to be reachable yet: records buffer
// until the first successful handshake.
func NewNetSink(cfg NetSinkConfig) (*NetSink, error) {
	if !ValidOrigin(cfg.Origin) {
		return nil, fmt.Errorf("netexport: invalid origin %q", cfg.Origin)
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("netexport: no collector address")
	}
	if cfg.Dial == nil {
		cfg.Dial = net.Dial
	}
	if cfg.BufferRecords <= 0 {
		cfg.BufferRecords = 1024
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 50 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
		if cfg.RetryMax < cfg.RetryMin {
			cfg.RetryMax = cfg.RetryMin
		}
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 30 * time.Second
	}
	s := &NetSink{cfg: cfg, met: newShipMetrics(cfg.Obs), done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s, nil
}

// WriteSegment encodes and buffers one segment record.
func (s *NetSink) WriteSegment(seg export.Segment) error {
	if len(seg.Events) == 0 {
		return nil
	}
	data, err := export.AppendSegmentRecord(nil, seg)
	if err != nil {
		return err
	}
	return s.enqueue(data)
}

// WriteMarker encodes and buffers one recovery-marker record.
func (s *NetSink) WriteMarker(m history.RecoveryMarker) error {
	data, err := export.AppendMarkerRecord(nil, m)
	if err != nil {
		return err
	}
	return s.enqueue(data)
}

// WriteHealth encodes and buffers one health-snapshot record.
func (s *NetSink) WriteHealth(h obs.HealthRecord) error {
	data, err := export.AppendHealthRecord(nil, h)
	if err != nil {
		return err
	}
	return s.enqueue(data)
}

// WriteAlert encodes and buffers one threshold-alert record, so a
// producer's self-watching rule transitions reach the fleet root in
// the same byte-identical record framing the local WAL uses.
func (s *NetSink) WriteAlert(a obsrules.Alert) error {
	data, err := export.AppendAlertRecord(nil, a)
	if err != nil {
		return err
	}
	return s.enqueue(data)
}

// enqueue applies the backpressure policy and appends the record to
// the un-acked buffer.
func (s *NetSink) enqueue(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Accepted++
	s.met.records.Inc()
	for len(s.buf) >= s.cfg.BufferRecords && !s.closed {
		if s.cfg.Policy == export.Drop {
			s.stats.Dropped++
			s.met.dropped.Inc()
			return nil
		}
		s.cond.Wait()
	}
	if s.closed {
		s.stats.Dropped++
		s.met.dropped.Inc()
		return fmt.Errorf("netexport: sink closed")
	}
	s.seq++
	s.buf = append(s.buf, shipRec{seq: s.seq, data: data})
	s.met.buffered.Set(int64(len(s.buf)))
	s.cond.Broadcast()
	return nil
}

// Flush asks the collector to make everything accepted so far durable
// and waits (bounded by FlushTimeout) for the ack covering it.
// Records dropped by policy are not waited for — they are gone, and
// the drop counter owns them.
func (s *NetSink) Flush() error {
	s.mu.Lock()
	target := s.seq
	if target > s.flushQ {
		s.flushQ = target
	}
	s.cond.Broadcast()
	timedOut := false
	timer := time.AfterFunc(s.cfg.FlushTimeout, func() {
		s.mu.Lock()
		timedOut = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	for s.acked < target && !s.closed && !timedOut {
		s.cond.Wait()
	}
	acked, closed := s.acked, s.closed
	s.mu.Unlock()
	timer.Stop()
	switch {
	case acked >= target:
		return nil
	case closed:
		return fmt.Errorf("netexport: sink closed with %d records un-acked", target-acked)
	default:
		return fmt.Errorf("netexport: flush timed out with %d records un-acked", target-acked)
	}
}

// Close stops the shipper. It first attempts a bounded Flush so an
// orderly shutdown ships the tail; whatever remains un-acked stays
// counted in Buffered (the conservation law holds through Close).
func (s *NetSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	return err
}

// Stats returns a consistent snapshot of the sink's counters.
func (s *NetSink) Stats() NetSinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Buffered = len(s.buf)
	return st
}

// run is the shipper: connect with backoff, resume-handshake, stream,
// repeat until closed.
func (s *NetSink) run() {
	defer close(s.done)
	backoff := s.cfg.RetryMin
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		conn, err := s.connect()
		if err != nil {
			// Partition (or collector down): ride it out in the buffer and
			// retry after a jittered, capped exponential backoff.
			if !s.sleep(jitter(backoff)) {
				return
			}
			backoff *= 2
			if backoff > s.cfg.RetryMax {
				backoff = s.cfg.RetryMax
			}
			continue
		}
		backoff = s.cfg.RetryMin
		s.serve(conn)
	}
}

// jitter spreads d over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleep waits for d or until the sink closes; it reports whether the
// sink is still open.
func (s *NetSink) sleep(d time.Duration) bool {
	deadline := time.Now().Add(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.closed && time.Now().Before(deadline) {
		remain := time.Until(deadline)
		timer := time.AfterFunc(remain, func() { s.cond.Broadcast() })
		s.cond.Wait()
		timer.Stop()
	}
	return !s.closed
}

// connect dials and runs the resume handshake: send HELLO, read
// WELCOME, trim everything the collector already holds durable, and
// rewind the send cursor so the surviving tail is retransmitted.
func (s *NetSink) connect() (net.Conn, error) {
	conn, err := s.cfg.Dial("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(appendFrame(nil, appendHello(nil, s.cfg.Origin))); err != nil {
		conn.Close()
		return nil, err
	}
	body, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(body) > 0 && body[0] == frameError {
		conn.Close()
		return nil, fmt.Errorf("netexport: collector refused: %s", parseErrorFrame(body))
	}
	lastDurable, err := parseWelcome(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})

	s.mu.Lock()
	// An ack lost to the previous partition: the WELCOME is the
	// collector re-asserting durability, so trim as if it had arrived.
	s.trimLocked(lastDurable)
	// Everything still buffered must be (re)transmitted on this
	// connection.
	if resend := len(s.buf); resend > 0 && s.sent > s.acked {
		s.stats.Resent += int64(resend)
		s.met.resent.Add(int64(resend))
	}
	s.sent = s.acked
	s.stats.Reconnects++
	s.met.reconnects.Inc()
	s.mu.Unlock()
	return conn, nil
}

// trimLocked discards buffered records with seq ≤ durable and credits
// them as acked. Caller holds mu.
func (s *NetSink) trimLocked(durable uint64) {
	if durable <= s.acked {
		return
	}
	i := 0
	for i < len(s.buf) && s.buf[i].seq <= durable {
		i++
	}
	if i > 0 {
		s.stats.Acked += int64(i)
		s.met.acked.Add(int64(i))
		s.buf = append(s.buf[:0], s.buf[i:]...)
		s.met.buffered.Set(int64(len(s.buf)))
	}
	s.acked = durable
	s.cond.Broadcast()
}

// serve streams the buffer over one connection until it breaks or the
// sink closes. A companion goroutine reads acks; either side closing
// the connection unblocks the other.
func (s *NetSink) serve(conn net.Conn) {
	defer conn.Close()
	broken := false // guarded by s.mu; set when the ack reader dies
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		br := bufio.NewReader(conn)
		for {
			body, err := readFrame(br)
			if err != nil {
				break
			}
			if len(body) > 0 && body[0] == frameError {
				break
			}
			seq, err := parseAck(body)
			if err != nil {
				break
			}
			s.mu.Lock()
			s.trimLocked(seq)
			s.mu.Unlock()
		}
		conn.Close()
		s.mu.Lock()
		broken = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	var frame []byte
	var flushSent uint64
	for {
		s.mu.Lock()
		for !s.closed && !broken && !s.hasUnsentLocked() && s.flushQ <= flushSent {
			s.cond.Wait()
		}
		if broken {
			s.mu.Unlock()
			break
		}
		var batch []shipRec
		for _, r := range s.buf {
			if r.seq > s.sent {
				batch = append(batch, r)
			}
		}
		wantFlush := s.flushQ > flushSent
		closed := s.closed
		if len(batch) > 0 {
			s.sent = batch[len(batch)-1].seq
		}
		if wantFlush {
			flushSent = s.flushQ
		}
		s.mu.Unlock()

		for _, r := range batch {
			frame = appendFrame(frame[:0], appendRecordFrame(nil, r.seq, r.data))
			if _, err := conn.Write(frame); err != nil {
				s.rewind()
				goto out
			}
		}
		if wantFlush {
			frame = appendFrame(frame[:0], appendFlushFrame(nil))
			if _, err := conn.Write(frame); err != nil {
				s.rewind()
				goto out
			}
		}
		if closed {
			// Give in-flight acks a moment to land, then let the deferred
			// Close sever the connection; the ack reader exits with it.
			s.awaitDrain()
			break
		}
	}
out:
	conn.Close()
	<-readerDone
}

// hasUnsentLocked reports whether any buffered record still awaits
// its first transmission on the current connection. Caller holds mu.
func (s *NetSink) hasUnsentLocked() bool {
	return len(s.buf) > 0 && s.buf[len(s.buf)-1].seq > s.sent
}

// rewind marks everything un-acked as unsent after a write error, so
// the next connection retransmits it.
func (s *NetSink) rewind() {
	s.mu.Lock()
	s.sent = s.acked
	s.mu.Unlock()
}

// awaitDrain blocks briefly while the closing sink's last acks
// arrive: until the buffer empties, the ack reader dies, or a short
// grace period lapses.
func (s *NetSink) awaitDrain() {
	deadline := time.Now().Add(2 * time.Second)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) > 0 && time.Now().Before(deadline) {
		timer := time.AfterFunc(50*time.Millisecond, func() { s.cond.Broadcast() })
		s.cond.Wait()
		timer.Stop()
	}
}
