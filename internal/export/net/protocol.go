// Package netexport ships trace records from a detector process to a
// collector service over a stream transport — fleet mode for the
// export pipeline. A NetSink is an export.Sink whose storage is on
// the other end of a TCP connection: records are framed with the same
// codec the local WAL uses (export.AppendSegmentRecord and friends),
// numbered with a per-origin ship sequence, buffered until the
// collector acknowledges them durable, and replayed after partitions.
// The Collector runs the familiar server-side stack — WALSink, index
// maintainer, compaction-ready per-origin directories — so montrace
// and SeekReader queries work unchanged against each origin's
// subdirectory.
//
// Delivery is at-least-once: an ack can be lost to a partition after
// the records it covers became durable, so the producer resends its
// un-acked tail on reconnect and the collector skips what it already
// applied. Because record encodings are deterministic and
// export.MergeReplay collapses identical duplicates, the replica's
// replay is byte-identical to the origin's local WAL replay —
// exactly-once at the store level over an at-least-once wire.
package netexport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing: every frame is
//
//	uint32  body length (little-endian)
//	bytes   body — frame type byte, then the type's payload
//	uint32  CRC-32 (IEEE) of body
//
// The CRC makes a torn or corrupted frame a detectable connection
// failure (sever and resync via the resume handshake) instead of a
// silently mis-parsed record. Varints are unsigned (binary.AppendUvarint).
const (
	// protoVersion is the handshake version byte carried in HELLO.
	protoVersion = 1

	frameHello   byte = 1 // producer → collector: version, origin
	frameWelcome byte = 2 // collector → producer: last durable ship seq
	frameRecord  byte = 3 // producer → collector: ship seq, record bytes
	frameAck     byte = 4 // collector → producer: durable-through ship seq
	frameFlush   byte = 5 // producer → collector: flush and ack now
	frameError   byte = 6 // collector → producer: fatal protocol error text
)

// maxFrameBody bounds a frame body; larger is a protocol error. It
// must comfortably exceed the largest record the exporter can produce
// (a drained segment of one checkpoint).
const maxFrameBody = 64 << 20

// maxOriginLen bounds an origin name.
const maxOriginLen = 128

var (
	errFrameTooLarge = errors.New("netexport: frame exceeds size limit")
	errFrameCRC      = errors.New("netexport: frame CRC mismatch")
	errBadFrame      = errors.New("netexport: malformed frame")
)

// appendFrame wraps body in the length/CRC framing.
func appendFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}

// readFrame reads one CRC-validated frame body.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBody {
		return nil, fmt.Errorf("%w: body length %d", errFrameTooLarge, n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	sum := binary.LittleEndian.Uint32(body[n:])
	body = body[:n]
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w (got %08x, frame says %08x)", errFrameCRC, got, sum)
	}
	return body, nil
}

// ValidOrigin reports whether s is a legal origin name: 1–128 bytes
// of [A-Za-z0-9._-], and not a path-traversal dot name. Origins name
// per-origin subdirectories on the collector, so the alphabet is the
// portable-filename set.
func ValidOrigin(s string) bool {
	if len(s) == 0 || len(s) > maxOriginLen || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func appendHello(dst []byte, origin string) []byte {
	dst = append(dst, frameHello, protoVersion)
	dst = binary.AppendUvarint(dst, uint64(len(origin)))
	return append(dst, origin...)
}

func parseHello(body []byte) (origin string, err error) {
	if len(body) < 2 || body[0] != frameHello {
		return "", fmt.Errorf("%w: expected HELLO", errBadFrame)
	}
	if body[1] != protoVersion {
		return "", fmt.Errorf("netexport: protocol version %d, want %d", body[1], protoVersion)
	}
	rest := body[2:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > maxOriginLen || uint64(len(rest)-used) != n {
		return "", fmt.Errorf("%w: bad HELLO origin", errBadFrame)
	}
	origin = string(rest[used:])
	if !ValidOrigin(origin) {
		return "", fmt.Errorf("netexport: invalid origin %q", origin)
	}
	return origin, nil
}

func appendWelcome(dst []byte, lastDurable uint64) []byte {
	dst = append(dst, frameWelcome)
	return binary.AppendUvarint(dst, lastDurable)
}

func parseWelcome(body []byte) (lastDurable uint64, err error) {
	if len(body) < 1 || body[0] != frameWelcome {
		return 0, fmt.Errorf("%w: expected WELCOME", errBadFrame)
	}
	n, used := binary.Uvarint(body[1:])
	if used <= 0 || 1+used != len(body) {
		return 0, fmt.Errorf("%w: bad WELCOME seq", errBadFrame)
	}
	return n, nil
}

func appendRecordFrame(dst []byte, seq uint64, rec []byte) []byte {
	dst = append(dst, frameRecord)
	dst = binary.AppendUvarint(dst, seq)
	return append(dst, rec...)
}

func parseRecordFrame(body []byte) (seq uint64, rec []byte, err error) {
	if len(body) < 1 || body[0] != frameRecord {
		return 0, nil, fmt.Errorf("%w: expected RECORD", errBadFrame)
	}
	seq, used := binary.Uvarint(body[1:])
	if used <= 0 || seq == 0 || 1+used >= len(body) {
		return 0, nil, fmt.Errorf("%w: bad RECORD header", errBadFrame)
	}
	return seq, body[1+used:], nil
}

func appendAck(dst []byte, seq uint64) []byte {
	dst = append(dst, frameAck)
	return binary.AppendUvarint(dst, seq)
}

func parseAck(body []byte) (seq uint64, err error) {
	if len(body) < 1 || body[0] != frameAck {
		return 0, fmt.Errorf("%w: expected ACK", errBadFrame)
	}
	n, used := binary.Uvarint(body[1:])
	if used <= 0 || 1+used != len(body) {
		return 0, fmt.Errorf("%w: bad ACK seq", errBadFrame)
	}
	return n, nil
}

func appendFlushFrame(dst []byte) []byte { return append(dst, frameFlush) }

func appendErrorFrame(dst []byte, msg string) []byte {
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	dst = append(dst, frameError)
	return append(dst, msg...)
}

func parseErrorFrame(body []byte) string {
	if len(body) < 1 || body[0] != frameError {
		return "malformed error frame"
	}
	return string(body[1:])
}
