package netexport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// The per-origin resume state: the highest ship sequence the
// collector has made durable, persisted next to the origin's WAL so a
// collector restart resumes the handshake where durability actually
// stands. The file is tiny and rewritten atomically (temp + rename)
// after every flush-and-ack; losing it is safe — the collector then
// under-reports in WELCOME, the producer resends its un-acked tail,
// and replay-level dedup (export.MergeReplay) collapses whatever was
// already on disk.

// shipStateName is the state file's name inside an origin directory.
const shipStateName = "shipstate"

// shipStateMagic identifies a resume-state file; the byte after it is
// a format version.
var shipStateMagic = [4]byte{'R', 'M', 'S', 'S'}

const shipStateVersion = 1

// loadShipState reads the origin directory's durable ship sequence; a
// missing or damaged file is sequence 0 (resync from scratch — safe,
// see above).
func loadShipState(dir string) uint64 {
	b, err := os.ReadFile(filepath.Join(dir, shipStateName))
	if err != nil || len(b) != 17 {
		return 0
	}
	if [4]byte(b[:4]) != shipStateMagic || b[4] != shipStateVersion {
		return 0
	}
	if crc32.ChecksumIEEE(b[:13]) != binary.LittleEndian.Uint32(b[13:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[5:13])
}

// saveShipState atomically persists the durable ship sequence.
func saveShipState(dir string, seq uint64) error {
	b := make([]byte, 0, 17)
	b = append(b, shipStateMagic[:]...)
	b = append(b, shipStateVersion)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	tmp := filepath.Join(dir, shipStateName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("netexport: write ship state: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("netexport: write ship state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("netexport: sync ship state: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("netexport: close ship state: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, shipStateName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("netexport: install ship state: %w", err)
	}
	return nil
}
