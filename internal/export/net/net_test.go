package netexport

import (
	"bufio"
	"bytes"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/export/compact"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/obs"
)

// tev/tseq mirror the export package's test fixtures: a deterministic
// segment of events for one monitor.
func tev(monitor string, seq int64) event.Event {
	return event.Event{
		Seq:     seq,
		Monitor: monitor,
		Type:    event.Enter,
		Pid:     seq,
		Proc:    "Op",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Millisecond),
	}
}

func tseq(monitor string, from, to int64) event.Seq {
	var s event.Seq
	for i := from; i <= to; i++ {
		s = append(s, tev(monitor, i))
	}
	return s
}

func tmarker(monitor string, horizon int64) history.RecoveryMarker {
	return history.RecoveryMarker{
		Monitor: monitor, Horizon: horizon, Dropped: 2, Rule: "ST-R", Pid: 7,
		At: time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC),
	}
}

func thealth(seq int64) obs.HealthRecord {
	return obs.HealthRecord{
		At:  time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		Seq: seq,
		Metrics: obs.Snapshot{Counters: []obs.Metric{
			{Name: "detect_checks_total", Value: seq},
		}},
	}
}

// startCollector runs a collector on a loopback listener and returns
// it with its address.
func startCollector(t *testing.T, cfg CollectorConfig) (*Collector, string) {
	t.Helper()
	col, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = col.Serve(l) }()
	return col, l.Addr().String()
}

// assertReplayIdentical requires the two directories to replay to the
// same trace — compared on the encoded bytes of the merged event
// sequence (the strongest normal form: one byte of divergence fails)
// plus deep-equal markers and health timelines.
func assertReplayIdentical(t *testing.T, localDir, originDir string) {
	t.Helper()
	local, err := export.ReadDir(localDir)
	if err != nil {
		t.Fatalf("read local WAL: %v", err)
	}
	remote, err := export.ReadDir(originDir)
	if err != nil {
		t.Fatalf("read collector WAL: %v", err)
	}
	lb := event.AppendBinary(nil, local.Events)
	rb := event.AppendBinary(nil, remote.Events)
	if !bytes.Equal(lb, rb) {
		t.Fatalf("replayed event streams diverge: local %d events/%d bytes, collector %d events/%d bytes",
			len(local.Events), len(lb), len(remote.Events), len(rb))
	}
	if !reflect.DeepEqual(local.Markers, remote.Markers) {
		t.Fatalf("markers diverge:\nlocal %+v\ncollector %+v", local.Markers, remote.Markers)
	}
	if !reflect.DeepEqual(local.Healths, remote.Healths) {
		t.Fatalf("health timelines diverge:\nlocal %+v\ncollector %+v", local.Healths, remote.Healths)
	}
}

// assertConservation pins the sink's counter law: every accepted
// record is acked, buffered or dropped — nothing leaks.
func assertConservation(t *testing.T, s *NetSink) {
	t.Helper()
	st := s.Stats()
	if st.Accepted != st.Acked+st.Dropped+int64(st.Buffered) {
		t.Fatalf("conservation violated: accepted %d != acked %d + dropped %d + buffered %d",
			st.Accepted, st.Acked, st.Dropped, st.Buffered)
	}
}

func TestProtocolFrameRoundTrip(t *testing.T) {
	t.Parallel()
	var wire []byte
	wire = appendFrame(wire, appendHello(nil, "node-1"))
	wire = appendFrame(wire, appendWelcome(nil, 42))
	wire = appendFrame(wire, appendRecordFrame(nil, 7, []byte("payload")))
	wire = appendFrame(wire, appendAck(nil, 7))
	wire = appendFrame(wire, appendFlushFrame(nil))
	wire = appendFrame(wire, appendErrorFrame(nil, "nope"))

	br := bufio.NewReader(bytes.NewReader(wire))
	b, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if origin, err := parseHello(b); err != nil || origin != "node-1" {
		t.Fatalf("hello = %q, %v", origin, err)
	}
	b, _ = readFrame(br)
	if seq, err := parseWelcome(b); err != nil || seq != 42 {
		t.Fatalf("welcome = %d, %v", seq, err)
	}
	b, _ = readFrame(br)
	seq, rec, err := parseRecordFrame(b)
	if err != nil || seq != 7 || string(rec) != "payload" {
		t.Fatalf("record = %d, %q, %v", seq, rec, err)
	}
	b, _ = readFrame(br)
	if seq, err := parseAck(b); err != nil || seq != 7 {
		t.Fatalf("ack = %d, %v", seq, err)
	}
	b, _ = readFrame(br)
	if len(b) != 1 || b[0] != frameFlush {
		t.Fatalf("flush frame = %v", b)
	}
	b, _ = readFrame(br)
	if msg := parseErrorFrame(b); msg != "nope" {
		t.Fatalf("error frame = %q", msg)
	}

	// A flipped byte is a CRC failure, not a mis-parse.
	bad := appendFrame(nil, appendAck(nil, 9))
	bad[5] ^= 0xff
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("corrupted frame passed CRC")
	}
}

func TestValidOrigin(t *testing.T) {
	t.Parallel()
	for _, ok := range []string{"a", "node-1", "host.rack_3", "A9"} {
		if !ValidOrigin(ok) {
			t.Errorf("ValidOrigin(%q) = false", ok)
		}
	}
	long := make([]byte, maxOriginLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "naïve", string(long)} {
		if ValidOrigin(bad) {
			t.Errorf("ValidOrigin(%q) = true", bad)
		}
	}
}

// TestShipAndReplayIdentical: the happy path — one producer teeing
// into a local WAL and a NetSink; after Flush the collector's
// per-origin directory replays byte-identically.
func TestShipAndReplayIdentical(t *testing.T) {
	t.Parallel()
	fleetDir := t.TempDir()
	col, addr := startCollector(t, CollectorConfig{Dir: fleetDir, AckEvery: 3})
	defer col.Close()

	localDir := t.TempDir()
	local, err := export.NewWALSink(localDir, export.WALConfig{MaxFileBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ship, err := NewNetSink(NetSinkConfig{
		Addr: addr, Origin: "p1", FlushTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tee := export.NewTeeSink(local, ship)

	next := int64(1)
	for i := 0; i < 10; i++ {
		n := next + 4
		if err := tee.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", next, n)}); err != nil {
			t.Fatal(err)
		}
		next = n + 1
	}
	if err := tee.WriteMarker(tmarker("m", next-1)); err != nil {
		t.Fatal(err)
	}
	if err := tee.WriteHealth(thealth(next - 1)); err != nil {
		t.Fatal(err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := tee.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}
	assertReplayIdentical(t, localDir, fleetDir+"/p1")
	assertConservation(t, ship)
	if st := ship.Stats(); st.Dropped != 0 || st.Buffered != 0 || st.Acked != st.Accepted {
		t.Fatalf("clean run left stats %+v", st)
	}
}

// TestDegradedNetwork: the partition/reconnect gauntlet. A
// fault-injected dialer severs the link mid-frame (CutAfter), then
// black-holes the collector entirely (Partition) while the producer
// keeps writing into the buffer, then heals. The collector's replica
// must still replay byte-identically, and the conservation law must
// hold with zero drops under the Block policy.
func TestDegradedNetwork(t *testing.T) {
	t.Parallel()
	fleetDir := t.TempDir()
	reg := obs.NewRegistry()
	col, addr := startCollector(t, CollectorConfig{Dir: fleetDir, AckEvery: 2, Obs: reg})
	defer col.Close()

	nf := faults.NewNetFault()
	localDir := t.TempDir()
	local, err := export.NewWALSink(localDir, export.WALConfig{MaxFileBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	ship, err := NewNetSink(NetSinkConfig{
		Addr: addr, Origin: "flaky", Dial: nf.Dial,
		BufferRecords: 256, Policy: export.Block,
		RetryMin: time.Millisecond, RetryMax: 20 * time.Millisecond,
		FlushTimeout: 20 * time.Second, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tee := export.NewTeeSink(local, ship)

	write := func(lo, hi int64) {
		t.Helper()
		if err := tee.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", lo, hi)}); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: healthy traffic, then force it durable so the cut lands
	// on a live, caught-up connection.
	write(1, 20)
	write(21, 40)
	if err := tee.Flush(); err != nil {
		t.Fatalf("phase-1 flush: %v", err)
	}

	// Phase 2: tear the link mid-frame. The next record's frame dies
	// partway; the collector sees a torn frame and resyncs on
	// reconnect, the shipper rewinds and retransmits.
	nf.CutAfter(30)
	write(41, 60)
	write(61, 80)
	if err := tee.WriteMarker(tmarker("m", 80)); err != nil {
		t.Fatal(err)
	}

	// Phase 3: full partition. Writes pile into the buffer; nothing is
	// lost (Block policy) and nothing gets through.
	nf.Partition()
	time.Sleep(10 * time.Millisecond) // let a retry or two slam into the wall
	for lo := int64(81); lo <= 180; lo += 20 {
		write(lo, lo+19)
	}
	if err := tee.WriteHealth(thealth(180)); err != nil {
		t.Fatal(err)
	}

	// Phase 4: heal and drain. Everything buffered during the
	// partition ships; the resume handshake deduplicates whatever the
	// torn-frame era double-sent.
	nf.Heal()
	write(181, 200)
	if err := tee.Flush(); err != nil {
		t.Fatalf("post-heal flush: %v", err)
	}
	if err := tee.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}

	assertReplayIdentical(t, localDir, fleetDir+"/flaky")
	assertConservation(t, ship)
	st := ship.Stats()
	if st.Dropped != 0 {
		t.Fatalf("Block policy dropped %d records", st.Dropped)
	}
	if st.Buffered != 0 || st.Acked != st.Accepted {
		t.Fatalf("drain incomplete: %+v", st)
	}
	if st.Reconnects < 2 {
		t.Fatalf("reconnects = %d, want at least the initial connect and one recovery", st.Reconnects)
	}
	// The registry view agrees with Stats (the counters the CI smoke
	// scrapes are the ones the law was proven on).
	snap := reg.Snapshot()
	rec, _ := snap.Counter("netship_records_total")
	ack, _ := snap.Counter("netship_acked_total")
	drop, _ := snap.Counter("netship_dropped_total")
	buf, _ := snap.Gauge("netship_buffered")
	if rec != ack+drop+buf {
		t.Fatalf("registry conservation violated: %d != %d + %d + %d", rec, ack, drop, buf)
	}
}

// TestDropPolicyConservation: with a tiny buffer and the collector
// black-holed, the Drop policy sheds records but never loses count of
// them; after healing, the survivors replay cleanly.
func TestDropPolicyConservation(t *testing.T) {
	t.Parallel()
	fleetDir := t.TempDir()
	col, addr := startCollector(t, CollectorConfig{Dir: fleetDir, AckEvery: 1})
	defer col.Close()

	nf := faults.NewNetFault()
	nf.Partition() // down from the start
	ship, err := NewNetSink(NetSinkConfig{
		Addr: addr, Origin: "lossy", Dial: nf.Dial,
		BufferRecords: 4, Policy: export.Drop,
		RetryMin: time.Millisecond, RetryMax: 10 * time.Millisecond,
		FlushTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 12; i++ {
		lo := i*5 + 1
		if err := ship.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", lo, lo+4)}); err != nil {
			t.Fatal(err)
		}
	}
	st := ship.Stats()
	if st.Accepted != 12 || st.Dropped != 8 || st.Buffered != 4 {
		t.Fatalf("pre-heal stats = %+v, want 12 accepted, 8 dropped, 4 buffered", st)
	}
	assertConservation(t, ship)

	nf.Heal()
	if err := ship.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := ship.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	assertConservation(t, ship)
	if st := ship.Stats(); st.Acked != 4 {
		t.Fatalf("post-heal stats = %+v, want the 4 buffered records acked", st)
	}
	rep, err := export.ReadDir(fleetDir + "/lossy")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 4 {
		t.Fatalf("collector stored %d segments, want the 4 survivors", rep.Segments)
	}
}

// TestCollectorRestartResume: the collector process dies and comes
// back on the same address; the producer's resume handshake picks up
// from the persisted durable seq, and nothing is lost or duplicated
// in the replayed store.
func TestCollectorRestartResume(t *testing.T) {
	t.Parallel()
	fleetDir := t.TempDir()
	col1, err := NewCollector(CollectorConfig{Dir: fleetDir, AckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	go func() { _ = col1.Serve(l1) }()

	localDir := t.TempDir()
	local, err := export.NewWALSink(localDir, export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ship, err := NewNetSink(NetSinkConfig{
		Addr: addr, Origin: "phoenix",
		RetryMin: time.Millisecond, RetryMax: 20 * time.Millisecond,
		FlushTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tee := export.NewTeeSink(local, ship)

	if err := tee.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 1, 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatalf("flush before restart: %v", err)
	}
	if err := col1.Close(); err != nil {
		t.Fatalf("first collector close: %v", err)
	}

	// Down. The producer keeps writing into its buffer.
	if err := tee.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 11, 20)}); err != nil {
		t.Fatal(err)
	}

	// Back, same address, same fleet root: the durable seq is read off
	// disk, so WELCOME resumes rather than restarts.
	col2, err := NewCollector(CollectorConfig{Dir: fleetDir, AckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go func() { _ = col2.Serve(l2) }()

	if err := tee.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 21, 30)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatalf("flush after restart: %v", err)
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}
	assertReplayIdentical(t, localDir, fleetDir+"/phoenix")
	assertConservation(t, ship)
}

// TestDuplicateOriginRefused: while one producer owns an origin, a
// second HELLO for it is answered with an error frame, not
// interleaved writes.
func TestDuplicateOriginRefused(t *testing.T) {
	t.Parallel()
	col, addr := startCollector(t, CollectorConfig{Dir: t.TempDir()})
	defer col.Close()
	ship, err := NewNetSink(NetSinkConfig{
		Addr: addr, Origin: "solo",
		RetryMin: time.Millisecond, RetryMax: 10 * time.Millisecond,
		FlushTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()
	if err := ship.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", 1, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := ship.Flush(); err != nil {
		t.Fatal(err) // also proves the first connection is established
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(appendFrame(nil, appendHello(nil, "solo"))); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || body[0] != frameError {
		t.Fatalf("duplicate origin got frame %v, want an error frame", body)
	}
}

// TestShipStateRoundTrip: the resume-state file survives a round trip
// and degrades to zero on damage.
func TestShipStateRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if got := loadShipState(dir); got != 0 {
		t.Fatalf("missing state = %d, want 0", got)
	}
	if err := saveShipState(dir, 4217); err != nil {
		t.Fatal(err)
	}
	if got := loadShipState(dir); got != 4217 {
		t.Fatalf("state = %d, want 4217", got)
	}
	// Corrupt it: CRC catches the flip and resyncs from zero.
	name := dir + "/" + shipStateName
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[7] ^= 0xff
	if err := os.WriteFile(name, b, 0o666); err != nil {
		t.Fatal(err)
	}
	if got := loadShipState(dir); got != 0 {
		t.Fatalf("corrupt state = %d, want 0", got)
	}
}

// TestCollectorCompactsOriginsWithRetention: satellite of the
// long-horizon store — a collector armed with CompactEvery+Compact
// compacts each origin's backlog in the background, independently,
// with a retention floor. Each origin's directory must stay a valid
// export directory throughout: everything at or above the horizon
// replays byte-identically to what the producer shipped, and the
// truncation is recorded in a tombstone, per origin.
func TestCollectorCompactsOriginsWithRetention(t *testing.T) {
	t.Parallel()
	fleetDir := t.TempDir()
	reg := obs.NewRegistry()
	col, addr := startCollector(t, CollectorConfig{
		Dir:          fleetDir,
		AckEvery:     2,
		MaxFileBytes: 1, // rotate every record: a file per record, plenty to compact
		CompactEvery: 4,
		Compact: func(dir string) error {
			_, err := compact.Dir(dir, compact.Config{RetainSeq: 20, Obs: reg})
			return err
		},
		Obs: reg,
	})
	defer col.Close()

	origins := []string{"node-a", "node-b"}
	want := make(map[string]event.Seq)
	for _, origin := range origins {
		ship, err := NewNetSink(NetSinkConfig{
			Addr: addr, Origin: origin, FlushTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		next := int64(1)
		for i := 0; i < 16; i++ {
			n := next + 3
			seg := tseq("m", next, n)
			want[origin] = append(want[origin], seg...)
			if err := ship.WriteSegment(export.Segment{Monitor: "m", Events: seg}); err != nil {
				t.Fatal(err)
			}
			next = n + 1
		}
		if err := ship.WriteMarker(tmarker("m", next-1)); err != nil {
			t.Fatal(err)
		}
		if err := ship.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := ship.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Compactions run on their own goroutines; Close waits for the
	// in-flight ones, and the counters prove at least one ran.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	var passes int64
	for _, origin := range origins {
		passes += reg.Counter(`collect_compactions_total{origin="` + origin + `"}`).Value()
	}
	if passes == 0 {
		t.Fatal("no background compaction ran despite CompactEvery=4 and per-record rotation")
	}

	for _, origin := range origins {
		rep, err := export.ReadDir(fleetDir + "/" + origin)
		if err != nil {
			t.Fatalf("origin %s after compaction: %v", origin, err)
		}
		h := rep.RetentionHorizon()
		if h == 0 || h > 20 {
			t.Fatalf("origin %s: retention horizon %d, want in (0, 20]", origin, h)
		}
		surviving := want[origin].SubSeq(h, 1<<62)
		got := event.AppendBinary(nil, rep.Events)
		if !bytes.Equal(got, event.AppendBinary(nil, surviving)) {
			t.Fatalf("origin %s: replay above horizon %d diverges from what was shipped (%d vs %d events)",
				origin, h, len(rep.Events), len(surviving))
		}
		if len(rep.Markers) != 1 {
			t.Fatalf("origin %s: marker lost under retention: %+v", origin, rep.Markers)
		}
	}
}
