package netexport

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"robustmon/internal/export"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// originHealth builds a health record distinguishable per origin: the
// counter name carries the origin, so a record landing in the wrong
// origin's WAL is detected, not just miscounted.
func originHealth(origin string, seq int64) obs.HealthRecord {
	return obs.HealthRecord{
		At:  time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		Seq: seq,
		Metrics: obs.Snapshot{Counters: []obs.Metric{
			{Name: "health_from_" + origin, Value: seq},
		}},
	}
}

func originAlert(origin string, seq int64, firing bool) obsrules.Alert {
	return obsrules.Alert{
		At:      time.Date(2001, 7, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Second),
		Seq:     seq,
		Rule:    "rule_of_" + origin,
		Metric:  "health_from_" + origin,
		Value:   float64(seq),
		Ceiling: 1,
		Firing:  firing,
		Origin:  origin,
	}
}

// TestFleetHealthForwardingConservation: several producers concurrently
// ship interleaved segments, health snapshots and threshold alerts into
// one fleet root. Every health record and every alert a producer wrote
// must appear in exactly that producer's origin directory, exactly
// once, in emission order — the conservation law of the fleet health
// timeline, raced deliberately (run under -race).
func TestFleetHealthForwardingConservation(t *testing.T) {
	t.Parallel()
	const producers = 3
	const healthsPer = 40
	fleetDir := t.TempDir()
	col, addr := startCollector(t, CollectorConfig{Dir: fleetDir, AckEvery: 5})
	defer col.Close()

	type written struct {
		healths []obs.HealthRecord
		alerts  []obsrules.Alert
	}
	wrote := make([]written, producers)
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			origin := fmt.Sprintf("p%d", i)
			ship, err := NewNetSink(NetSinkConfig{
				Addr: addr, Origin: origin, FlushTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Error(err)
				return
			}
			next := int64(1)
			for seq := int64(1); seq <= healthsPer; seq++ {
				// Interleave the record kinds the way a live detector
				// does: a segment, then at the same horizon a health
				// snapshot and (every few) an alert transition.
				hi := next + 2
				if err := ship.WriteSegment(export.Segment{Monitor: "m", Events: tseq("m", next, hi)}); err != nil {
					t.Error(err)
					return
				}
				next = hi + 1
				h := originHealth(origin, seq)
				wrote[i].healths = append(wrote[i].healths, h)
				if err := ship.WriteHealth(h); err != nil {
					t.Error(err)
					return
				}
				if seq%10 == 0 {
					a := originAlert(origin, seq, (seq/10)%2 == 1)
					wrote[i].alerts = append(wrote[i].alerts, a)
					if err := ship.WriteAlert(a); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := ship.Flush(); err != nil {
				t.Errorf("%s: flush: %v", origin, err)
			}
			if err := ship.Close(); err != nil {
				t.Errorf("%s: close: %v", origin, err)
			}
		}(i)
	}
	wg.Wait()

	act := col.Activity()
	if len(act) != producers {
		t.Fatalf("Activity reports %d origins, want %d", len(act), producers)
	}
	for _, a := range act {
		if a.LastHealthSeq != healthsPer {
			t.Fatalf("origin %s LastHealthSeq = %d, want %d", a.Origin, a.LastHealthSeq, healthsPer)
		}
		if a.LastRecord.IsZero() || a.Records == 0 {
			t.Fatalf("origin %s has empty liveness cursors: %+v", a.Origin, a)
		}
	}

	if err := col.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}
	for i := 0; i < producers; i++ {
		origin := fmt.Sprintf("p%d", i)
		rep, err := export.ReadDir(fleetDir + "/" + origin)
		if err != nil {
			t.Fatalf("read %s: %v", origin, err)
		}
		// Exactly once, in order: the replayed timeline deep-equals the
		// emission log. Origin-tagged metric names make a record landing
		// in the wrong directory a name mismatch, not a silent count.
		if !reflect.DeepEqual(rep.Healths, wrote[i].healths) {
			t.Fatalf("%s: health timeline diverges:\ngot  %+v\nwant %+v", origin, rep.Healths, wrote[i].healths)
		}
		if !reflect.DeepEqual(rep.Alerts, wrote[i].alerts) {
			t.Fatalf("%s: alert timeline diverges:\ngot  %+v\nwant %+v", origin, rep.Alerts, wrote[i].alerts)
		}
		if rep.DuplicateHealths != 0 || rep.DuplicateAlerts != 0 {
			t.Fatalf("%s: %d duplicate healths, %d duplicate alerts", origin, rep.DuplicateHealths, rep.DuplicateAlerts)
		}
	}
}
