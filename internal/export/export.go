// Package export is the asynchronous trace-export pipeline: it moves
// trace persistence off the instrumented hot path, replacing the
// memory-unbounded history.WithFullTrace strategy with a bounded
// streaming one.
//
// The paper (§3.3) prunes a drained history segment as soon as the
// checking routine has replayed it; everything offline tooling wants —
// export, re-checking, the FD-rule ablation — therefore used to demand
// WithFullTrace, which keeps the whole run in memory and merges it
// under every shard lock on each Full() call. This package instead
// consumes the segments the checkpoints drain anyway and streams them
// to a pluggable Sink on a dedicated writer goroutine, following the
// detectEr line of work (Cassar & Francalanza): asynchronous trace
// consumption is where the monitoring-overhead win lives.
//
// # Pipeline
//
//	monitors → history.DB ──Drain/DrainMonitor──▶ checking routine
//	                      └──drain-tee──▶ Exporter ──chan──▶ writer ──▶ Sink
//
// The Exporter accepts drained per-monitor segments through a bounded
// channel with an explicit backpressure policy — Block stalls the
// drainer (lossless), Drop discards the segment and counts it — and a
// single writer goroutine forwards them to the Sink. Drain tees are
// additive (history.DB.AddDrainTee): every tee observes the whole
// drain stream, so several detectors sharing one database never unwire
// each other's exporters. The wiring is one line at either end:
// db.AddDrainTee(exp.Consume) on the database, or
// detect.Config.Exporter on the detector, which installs the tee and
// flushes on shutdown.
//
// WALSink persists to numbered files of typed, CRC-protected records —
// segments (per-record monitor id, seq range, count) and recovery
// markers (see MarkerSink; a marker records a shard-local online reset
// and the resulting deliberate gap in the monitor's trace) — fsyncing
// on rotation, which is size-based (MaxFileBytes) and optionally
// age-based (RotateEvery). ReadDir replays a directory into a Replay:
// the record payloads k-way-merged (event.Merge) back into the global
// <L order in Replay.Events, the recovery markers in Replay.Markers,
// and crash-truncated-tail recovery reported via Replay.Recovered — a
// torn record is tolerated only at the tail of the newest file, where
// it is the expected signature of a crash mid-append; anywhere else it
// is corruption and an error. A CRC-corrupt full-length record is
// damage to that record alone: it is skipped and counted
// (Replay.CorruptRecords) and reading continues. Batched checkpoints
// (history.DB.DrainMonitorUpTo) change only how many records frame a
// checkpoint's events, never which events are exported nor their
// order: for a lossless (Block-policy) run Replay.Events is
// byte-identical to what ExportBinary of a WithFullTrace run produces.
//
// # Trace store
//
// Two subpackages make the on-disk artefact cheap to consume and keep
// it bounded (see DESIGN.md §5). index maintains a sparse per-file
// index — WALConfig.OnSeal hands each sealed file's FileSummary
// (seq ranges, monitor set, marker offsets, header-chain CRC; also
// rebuildable via ScanFile) to an index.Maintainer — and answers
// windowed queries (index.SeekReader.ReplayRange) by opening only the
// files the index admits. compact merges the rotated backlog into
// dense per-monitor segments, replay-identical to the original;
// Config.CompactEvery/Compact let the exporter trigger it in the
// background once the sink's SealedFiles backlog crosses a threshold,
// so long-running detectors bound their own footprint.
package export

import (
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// Segment is one drained per-monitor history segment: the unit the
// checkpoints hand to the exporter and the unit the WAL persists as a
// record. Events are seq-sorted (history shards claim global sequence
// numbers under the shard lock) and belong to a single monitor.
type Segment struct {
	// Monitor names the monitor whose shard the segment was drained
	// from.
	Monitor string
	// Events is the drained slice. It is shared read-only with the
	// checking routine that drained it; sinks must not mutate it.
	Events event.Seq
}

// First returns the lowest sequence number in the segment (0 when
// empty).
func (s Segment) First() int64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[0].Seq
}

// Last returns the highest sequence number in the segment (0 when
// empty).
func (s Segment) Last() int64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].Seq
}

// Sink persists exported segments. Implementations are driven by the
// exporter's single writer goroutine, so they need not be safe for
// concurrent use.
type Sink interface {
	// WriteSegment persists one drained segment.
	WriteSegment(seg Segment) error
	// Flush forces buffered data to stable storage.
	Flush() error
	// Close flushes and releases the sink. No calls follow Close.
	Close() error
}

// MemorySink collects segments (and recovery markers and health
// snapshots) in memory — the test double and the cheapest way to tail
// a database programmatically.
type MemorySink struct {
	segments []Segment
	markers  []history.RecoveryMarker
	healths  []obs.HealthRecord
	tombs    []Tombstone
	alerts   []obsrules.Alert
}

// WriteSegment appends the segment.
func (m *MemorySink) WriteSegment(seg Segment) error {
	m.segments = append(m.segments, seg)
	return nil
}

// WriteMarker appends the recovery marker (the MarkerSink extension).
func (m *MemorySink) WriteMarker(mk history.RecoveryMarker) error {
	m.markers = append(m.markers, mk)
	return nil
}

// Markers returns the collected recovery markers in arrival order.
func (m *MemorySink) Markers() []history.RecoveryMarker { return m.markers }

// WriteHealth appends the health snapshot (the HealthSink extension).
func (m *MemorySink) WriteHealth(h obs.HealthRecord) error {
	m.healths = append(m.healths, h)
	return nil
}

// Healths returns the collected health snapshots in arrival order.
func (m *MemorySink) Healths() []obs.HealthRecord { return m.healths }

// WriteTombstone appends the retention tombstone (the TombstoneSink
// extension).
func (m *MemorySink) WriteTombstone(t Tombstone) error {
	m.tombs = append(m.tombs, t)
	return nil
}

// Tombstones returns the collected retention tombstones in arrival
// order.
func (m *MemorySink) Tombstones() []Tombstone { return m.tombs }

// WriteAlert appends the threshold alert (the AlertSink extension).
func (m *MemorySink) WriteAlert(a obsrules.Alert) error {
	m.alerts = append(m.alerts, a)
	return nil
}

// Alerts returns the collected threshold alerts in arrival order.
func (m *MemorySink) Alerts() []obsrules.Alert { return m.alerts }

// Flush is a no-op.
func (m *MemorySink) Flush() error { return nil }

// Close is a no-op.
func (m *MemorySink) Close() error { return nil }

// Segments returns the collected segments in arrival order.
func (m *MemorySink) Segments() []Segment { return m.segments }

// Events merges every collected segment into the global <L order.
func (m *MemorySink) Events() event.Seq {
	seqs := make([]event.Seq, 0, len(m.segments))
	for _, s := range m.segments {
		seqs = append(seqs, s.Events)
	}
	return event.Merge(seqs...)
}
