package export

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// ErrBadWALMagic reports that a file in the export directory does not
// start with the WAL header.
var ErrBadWALMagic = errors.New("export: bad wal magic")

// errCRCMismatch marks a full-length record whose payload failed its
// CRC — damage to one record, not to the file structure: the header
// was plausible and the payload was fully consumed, so the reader is
// positioned at the next record boundary and can keep going. ReadDir
// skips such records and counts them (Replay.CorruptRecords) instead
// of abandoning everything after them.
var errCRCMismatch = errors.New("record CRC mismatch")

// ErrCorruptRecord is the exported identity of a CRC-corrupt record —
// localised damage the caller may skip (errors.Is(err,
// ErrCorruptRecord) holds for the wrapped errors RecordReader and the
// file readers return). The streaming compactor uses it to skip and
// count a damaged record instead of abandoning a pass.
var ErrCorruptRecord = errCRCMismatch

// Replay is the result of reading an export directory back.
type Replay struct {
	// Events is the recorded trace merged into the global <L order —
	// what history.DB.Full() of a WithFullTrace run would have
	// returned.
	Events event.Seq
	// Markers are the recovery markers found in the WAL, in record
	// order (which is reset order — the exporter's single writer
	// serialises them). Each marks a shard-local online reset: the
	// named monitor's events at or below Marker.Horizon that were still
	// buffered at reset time were discarded unreplayed, so Events has a
	// deliberate gap there and violations straddling the horizon on
	// that monitor may be reset artefacts. Nil for a run that never
	// reset (including every format-v1 WAL).
	Markers []history.RecoveryMarker
	// Healths are the health-snapshot records found in the WAL, in
	// record order (which is capture order — the exporter's single
	// writer serialises them): the run's own metrics timeline. Nil for
	// a run recorded without a health cadence (including every
	// format-v1 WAL).
	Healths []obs.HealthRecord
	// Alerts are the threshold-alert records found in the WAL, in
	// record order (which is transition order — the exporter's single
	// writer serialises them): the run's rule-engine timeline, every
	// fire and clear of the self-watching rules. Nil for a run recorded
	// without rules (including every pre-alert WAL).
	Alerts []obsrules.Alert
	// Tombstones are the retention tombstones found in the WAL, exact
	// duplicates collapsed. A tombstone records a deliberate
	// retention truncation: events below Tombstone.Horizon may be
	// missing from Events by design — disk was reclaimed, not lost.
	// Nil for a store retention never truncated.
	Tombstones []Tombstone
	// Files and Segments count the WAL files and valid segment records
	// read (Segments excludes marker records).
	Files, Segments int
	// CorruptRecords counts records whose full-length payload failed
	// its CRC — localised damage (a bit flip, a bad sector), not a
	// crash tear, which is always a short read. Each such record is
	// skipped and the reader continues with the next one, so a single
	// corrupt record costs its own events, never the rest of the file.
	CorruptRecords int
	// DuplicateEvents, DuplicateMarkers and DuplicateHealths count
	// identical records collapsed during the merge. Duplicates never occur in a healthy
	// WAL (sequence numbers are globally unique); they are the
	// signature of a compaction interrupted between installing its
	// merged output and unlinking the inputs it replaced — the reader
	// recovers the exact stream either way. A sequence-number collision
	// between *different* events is corruption and an error.
	DuplicateEvents, DuplicateMarkers, DuplicateHealths int
	// DuplicateTombstones and DuplicateAlerts count identical
	// tombstones and alerts collapsed during the merge (the same
	// interrupted-compaction signature as the other duplicate
	// counters).
	DuplicateTombstones, DuplicateAlerts int
	// Recovered reports that the newest file ended in a torn record
	// (crash mid-write); the tail was dropped and Events holds
	// everything up to the last valid record.
	Recovered bool
	// TruncatedFile names the file with the torn tail (empty when
	// Recovered is false).
	TruncatedFile string
}

// RetentionHorizon returns the highest tombstone horizon in the replay
// — the sequence number below which retention may have dropped records
// — or 0 when retention never truncated this store. A windowed query
// whose window starts below this value is incomplete by design.
func (r *Replay) RetentionHorizon() int64 {
	var h int64
	for _, t := range r.Tombstones {
		if t.Horizon > h {
			h = t.Horizon
		}
	}
	return h
}

// ReadDir replays an export directory written by WALSink: every valid
// record of every segment file, k-way-merged (event.Merge) back into
// the global sequence order. Records land in the WAL in drain order,
// which may interleave monitors arbitrarily — each record's payload is
// seq-sorted, and the merge restores the total order.
//
// A torn record — short header, short payload, or a zero-filled tail
// block — is tolerated only at the tail of the newest file, where it
// is the expected signature of a crash mid-write: the tail is dropped
// and Replay.Recovered is set. A torn record in any older file is
// corruption and an error. A CRC mismatch over a full-length payload
// (an append-only tear is a prefix, never a full-length scramble) is
// damage to that one record: it is skipped, counted in
// Replay.CorruptRecords, and reading continues with the next record.
func ReadDir(dir string) (*Replay, error) {
	names, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("export: no %s files in %s", walExt, dir)
	}
	rep := &Replay{Files: len(names)}
	var payloads []event.Seq
	var markers []history.RecoveryMarker
	var healths []obs.HealthRecord
	var tombs []Tombstone
	var alerts []obsrules.Alert
	for i, name := range names {
		fr, err := readWALFile(name)
		if err != nil {
			return nil, err
		}
		if fr.torn != nil {
			if i != len(names)-1 {
				return nil, fmt.Errorf("export: %s: %w (not the newest file — corruption, not a crash tail)", name, fr.torn)
			}
			rep.Recovered = true
			rep.TruncatedFile = name
		}
		payloads = append(payloads, fr.segs...)
		markers = append(markers, fr.markers...)
		healths = append(healths, fr.healths...)
		tombs = append(tombs, fr.tombs...)
		alerts = append(alerts, fr.alerts...)
		rep.CorruptRecords += fr.corrupt
	}
	rep.Segments = len(payloads)
	merged, err := MergeReplay(payloads, markers, healths, tombs, alerts)
	if err != nil {
		return nil, err
	}
	rep.Events = merged.Events
	rep.Markers = merged.Markers
	rep.Healths = merged.Healths
	rep.Tombstones = merged.Tombstones
	rep.Alerts = merged.Alerts
	rep.DuplicateEvents = merged.DuplicateEvents
	rep.DuplicateMarkers = merged.DuplicateMarkers
	rep.DuplicateHealths = merged.DuplicateHealths
	rep.DuplicateTombstones = merged.DuplicateTombstones
	rep.DuplicateAlerts = merged.DuplicateAlerts
	return rep, nil
}

// MergeReplay assembles per-record event payloads, markers, health
// snapshots, retention tombstones and threshold alerts into the
// replayed form: events k-way-merged into the global <L order with
// identical duplicates collapsed (and counted), the record-kind slices
// deduplicated preserving first-occurrence order. It is the shared
// back half of ReadDir and the windowed index.SeekReader; only Events,
// Markers, Healths, Tombstones, Alerts and the duplicate counters of
// the returned Replay are populated. A sequence-number collision
// between two different events is an error — that is two runs (or a
// corrupted record) sharing one directory, not a recoverable
// duplicate.
func MergeReplay(payloads []event.Seq, markers []history.RecoveryMarker, healths []obs.HealthRecord, tombstones []Tombstone, alerts []obsrules.Alert) (*Replay, error) {
	rep := &Replay{}
	merged := event.Merge(payloads...)
	out := merged[:0]
	for _, e := range merged {
		if n := len(out); n > 0 && out[n-1].Seq == e.Seq {
			if out[n-1] != e {
				return nil, fmt.Errorf("export: two different events share sequence number %d (monitors %q and %q) — mixed runs or corruption",
					e.Seq, out[n-1].Monitor, e.Monitor)
			}
			rep.DuplicateEvents++
			continue
		}
		out = append(out, e)
	}
	if len(out) > 0 {
		rep.Events = out
	}
	if len(markers) > 0 {
		// Into a fresh slice — never in place: the input belongs to the
		// caller (this is an exported API) and must not be scrambled by
		// the compaction under it.
		seen := make(map[history.RecoveryMarker]bool, len(markers))
		kept := make([]history.RecoveryMarker, 0, len(markers))
		for _, m := range markers {
			if seen[m] {
				rep.DuplicateMarkers++
				continue
			}
			seen[m] = true
			kept = append(kept, m)
		}
		rep.Markers = kept
	}
	if len(healths) > 0 {
		// Health records hold slices, so the dedup identity is the
		// deterministic encoding rather than Go equality — same
		// semantics: exact duplicates are compaction overlap, collapsed
		// and counted.
		seen := make(map[string]bool, len(healths))
		kept := make([]obs.HealthRecord, 0, len(healths))
		for _, h := range healths {
			k := HealthKey(h)
			if seen[k] {
				rep.DuplicateHealths++
				continue
			}
			seen[k] = true
			kept = append(kept, h)
		}
		rep.Healths = kept
	}
	if len(tombstones) > 0 {
		// Tombstones hold a slice, so the dedup identity is the
		// deterministic encoding (TombstoneKey), like health records.
		seen := make(map[string]bool, len(tombstones))
		kept := make([]Tombstone, 0, len(tombstones))
		for _, tb := range tombstones {
			k := TombstoneKey(tb)
			if seen[k] {
				rep.DuplicateTombstones++
				continue
			}
			seen[k] = true
			kept = append(kept, tb)
		}
		rep.Tombstones = kept
	}
	if len(alerts) > 0 {
		// Alerts dedup on their deterministic encoding (AlertKey) like
		// health records and tombstones — one identity rule for every
		// record kind.
		seen := make(map[string]bool, len(alerts))
		kept := make([]obsrules.Alert, 0, len(alerts))
		for _, a := range alerts {
			k := AlertKey(a)
			if seen[k] {
				rep.DuplicateAlerts++
				continue
			}
			seen[k] = true
			kept = append(kept, a)
		}
		rep.Alerts = kept
	}
	return rep, nil
}

// FileReplay is one WAL segment file read back on its own — the
// per-file half of ReadDir, exported for the trace-store layers
// (index.SeekReader opens exactly the files its index admits, the
// compactor reads the rotated inputs it is about to merge).
type FileReplay struct {
	// Segments holds the file's valid segment records in record order.
	Segments []Segment
	// Markers holds the file's recovery markers in record order.
	Markers []history.RecoveryMarker
	// Healths holds the file's health-snapshot records in record order.
	Healths []obs.HealthRecord
	// Tombstones holds the file's retention tombstones in record order.
	Tombstones []Tombstone
	// Alerts holds the file's threshold-alert records in record order.
	Alerts []obsrules.Alert
	// CorruptRecords counts skipped CRC-corrupt records (see Replay).
	CorruptRecords int
	// Torn reports that the file ends in a torn record; Segments and
	// Markers hold the valid prefix. Acceptable only for the newest
	// file of a directory — the crash-tail signature — and corruption
	// anywhere else; that verdict is the caller's.
	Torn bool
}

// ReadWALFile reads one segment file of either format version.
func ReadWALFile(name string) (*FileReplay, error) {
	fr, err := readWALFile(name)
	if err != nil {
		return nil, err
	}
	out := &FileReplay{
		Markers:        fr.markers,
		Healths:        fr.healths,
		Tombstones:     fr.tombs,
		Alerts:         fr.alerts,
		CorruptRecords: fr.corrupt,
		Torn:           fr.torn != nil,
	}
	for _, seg := range fr.segs {
		// readRecord enforces non-empty payloads with a single monitor,
		// so the segment's monitor is its first event's.
		out.Segments = append(out.Segments, Segment{Monitor: seg[0].Monitor, Events: seg})
	}
	return out, nil
}

// WALFiles lists the directory's segment files sorted by name — which
// is creation order, since names are zero-padded numbers.
func WALFiles(dir string) ([]string, error) { return walFiles(dir) }

// readRecordAt reads the single record at the given byte offset of a
// WAL file — the shared machinery of the index's point reads
// (ReadMarkerAt, ReadHealthAt, ReadTombstoneAt, ReadAlertAt).
func readRecordAt(name string, offset int64) (decodedRecord, error) {
	var zero decodedRecord
	f, err := os.Open(name)
	if err != nil {
		return zero, fmt.Errorf("export: open wal file: %w", err)
	}
	defer f.Close()
	var magic [5]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return zero, fmt.Errorf("export: %s: read magic: %w", name, err)
	}
	version := magic[4]
	if [4]byte(magic[:4]) != walMagicPrefix || version < walVersion1 || version > walVersionLatest {
		return zero, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	if offset < int64(len(magic)) || offset >= math.MaxInt64 {
		return zero, fmt.Errorf("export: %s: implausible record offset %d", name, offset)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return zero, fmt.Errorf("export: %s: seek record: %w", name, err)
	}
	rec, terr, rerr := readRecord(bufio.NewReader(f), version)
	if rerr != nil {
		return zero, fmt.Errorf("export: %s offset %d: %w", name, offset, rerr)
	}
	if terr != nil {
		return zero, fmt.Errorf("export: %s offset %d: torn record: %w", name, offset, terr)
	}
	return rec, nil
}

// ReadMarkerAt reads the single marker record at the given byte offset
// of a WAL file — the point-read behind the index's marker offsets: a
// windowed replay can collect a file's recovery markers without
// decoding any of its segment payloads.
func ReadMarkerAt(name string, offset int64) (history.RecoveryMarker, error) {
	var zero history.RecoveryMarker
	rec, err := readRecordAt(name, offset)
	if err != nil {
		return zero, err
	}
	if rec.marker == nil {
		return zero, fmt.Errorf("export: %s offset %d does not hold a marker record", name, offset)
	}
	return *rec.marker, nil
}

// ReadHealthAt reads the single health-snapshot record at the given
// byte offset of a WAL file — the point-read behind the index's
// health offsets, so a windowed replay collects a skipped file's
// health timeline without decoding its segment payloads.
func ReadHealthAt(name string, offset int64) (obs.HealthRecord, error) {
	var zero obs.HealthRecord
	rec, err := readRecordAt(name, offset)
	if err != nil {
		return zero, err
	}
	if rec.health == nil {
		return zero, fmt.Errorf("export: %s offset %d does not hold a health record", name, offset)
	}
	return *rec.health, nil
}

// ReadTombstoneAt reads the single retention-tombstone record at the
// given byte offset of a WAL file — the point-read behind the index's
// tombstone offsets, so a windowed replay learns the retention horizon
// of a skipped file without decoding its segment payloads.
func ReadTombstoneAt(name string, offset int64) (Tombstone, error) {
	var zero Tombstone
	rec, err := readRecordAt(name, offset)
	if err != nil {
		return zero, err
	}
	if rec.tomb == nil {
		return zero, fmt.Errorf("export: %s offset %d does not hold a tombstone record", name, offset)
	}
	return *rec.tomb, nil
}

// ReadAlertAt reads the single threshold-alert record at the given
// byte offset of a WAL file — the point-read behind the index's alert
// offsets, so a windowed replay collects a skipped file's rule-engine
// timeline without decoding its segment payloads.
func ReadAlertAt(name string, offset int64) (obsrules.Alert, error) {
	var zero obsrules.Alert
	rec, err := readRecordAt(name, offset)
	if err != nil {
		return zero, err
	}
	if rec.alert == nil {
		return zero, fmt.Errorf("export: %s offset %d does not hold an alert record", name, offset)
	}
	return *rec.alert, nil
}

// fileReplay is readWALFile's result: the decoded records of one file
// plus its damage accounting.
type fileReplay struct {
	segs    []event.Seq
	markers []history.RecoveryMarker
	healths []obs.HealthRecord
	tombs   []Tombstone
	alerts  []obsrules.Alert
	corrupt int
	torn    error // non-nil when the file ends mid-record
}

// readWALFile reads one segment file (either format version). A CRC-
// corrupt record is skipped and counted; a torn tail ends the read
// with the valid prefix and fr.torn set — the caller decides whether a
// torn tail is acceptable for this file.
func readWALFile(name string) (*fileReplay, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("export: open wal file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [5]byte
	fr := &fileReplay{}
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// Even the magic can be torn: a crash right after file creation.
		fr.torn = fmt.Errorf("torn wal header: %w", err)
		return fr, nil
	}
	version := magic[4]
	if [4]byte(magic[:4]) != walMagicPrefix || version < walVersion1 || version > walVersionLatest {
		return nil, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	for {
		rec, terr, rerr := readRecord(br, version)
		if rerr != nil {
			if errors.Is(rerr, errCRCMismatch) {
				// Localised damage: the payload was fully consumed, so the
				// stream is at the next record boundary — skip and go on.
				fr.corrupt++
				continue
			}
			return nil, fmt.Errorf("export: %s record %d: %w", name, len(fr.segs)+len(fr.markers)+len(fr.healths)+len(fr.tombs)+len(fr.alerts)+fr.corrupt, rerr)
		}
		if terr != nil {
			if terr == io.EOF {
				return fr, nil // EOF exactly at a record boundary: clean end
			}
			fr.torn = terr
			return fr, nil
		}
		switch {
		case rec.marker != nil:
			fr.markers = append(fr.markers, *rec.marker)
		case rec.health != nil:
			fr.healths = append(fr.healths, *rec.health)
		case rec.tomb != nil:
			fr.tombs = append(fr.tombs, *rec.tomb)
		case rec.alert != nil:
			fr.alerts = append(fr.alerts, *rec.alert)
		default:
			fr.segs = append(fr.segs, rec.events)
		}
	}
}

// recHeader is one decoded record header plus the exact bytes it was
// read from (raw) — the unit of the per-file header chain that the
// index checksums.
type recHeader struct {
	typ         byte
	monitor     string
	first, last int64
	count       uint32
	payloadLen  uint32
	sum         uint32
	raw         []byte
}

// readHeader reads one record header of the given format version. A
// short read at any point is a torn record and comes back in terr:
// io.EOF exactly at a record boundary (a clean end of file),
// io.ErrUnexpectedEOF or an implausible-header error otherwise. No
// header damage is distinguishable from a tear — arbitrary bytes left
// by a torn tail produce exactly the same shapes — so readHeader never
// reports corruption; that verdict needs the payload CRC.
func readHeader(br *bufio.Reader, version byte) (*recHeader, error) {
	h := &recHeader{typ: recSegment, raw: make([]byte, 0, 64)}
	var scratch [8]byte
	read := func(n int) error {
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return err
		}
		h.raw = append(h.raw, scratch[:n]...)
		return nil
	}
	if version >= walVersion2 {
		if err := read(1); err != nil {
			return nil, err // io.EOF here = clean boundary
		}
		h.typ = scratch[0]
		if h.typ != recSegment && h.typ != recMarker && h.typ != recHealth && h.typ != recTombstone && h.typ != recAlert {
			// No writer emits such a type, but a torn tail leaves
			// arbitrary bytes behind — torn at the tail, corruption
			// elsewhere (the caller decides which).
			return nil, fmt.Errorf("export: unknown record type %d", h.typ)
		}
	}
	if err := read(2); err != nil {
		if version >= walVersion2 {
			// The type byte was already consumed: EOF here is mid-record.
			err = noEOFBoundary(err)
		}
		return nil, err // v1: io.EOF here = clean boundary
	}
	monLen := int(binary.LittleEndian.Uint16(scratch[:2]))
	if monLen > maxMonitorName {
		// The writer refuses such names, so these bytes were never the
		// start of a record — but a torn header leaves arbitrary bytes
		// behind, so at the tail this still reads as a torn record.
		return nil, fmt.Errorf("export: monitor name %d bytes long (limit %d)", monLen, maxMonitorName)
	}
	mon := make([]byte, monLen)
	if _, err := io.ReadFull(br, mon); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.raw = append(h.raw, mon...)
	h.monitor = string(mon)
	if err := read(8); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.first = int64(binary.LittleEndian.Uint64(scratch[:8]))
	if err := read(8); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.last = int64(binary.LittleEndian.Uint64(scratch[:8]))
	if err := read(4); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.count = binary.LittleEndian.Uint32(scratch[:4])
	if err := read(4); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.payloadLen = binary.LittleEndian.Uint32(scratch[:4])
	if err := read(4); err != nil {
		return nil, noEOFBoundary(err)
	}
	h.sum = binary.LittleEndian.Uint32(scratch[:4])
	// Guard the allocation before trusting the length field: a torn or
	// bit-flipped header must not make the reader balloon.
	const maxPayload = 1 << 30
	if h.payloadLen > maxPayload {
		return nil, fmt.Errorf("export: implausible payload length %d", h.payloadLen)
	}
	if h.typ == recSegment && h.count == 0 {
		// The writer skips empty segments, so no real segment record has
		// count 0 — but a filesystem that zero-fills a torn tail block
		// produces exactly this shape (in v2 the zero fill also reads as
		// type 0 = segment). Torn, not corrupt. Markers and tombstones
		// are exempt: a reset that found nothing buffered legitimately
		// drops 0 events, and a tombstone's count merely mirrors its
		// (possibly zero, possibly saturated) dropped total.
		return nil, fmt.Errorf("export: zero-count record (zero-filled torn tail)")
	}
	return h, nil
}

// decodedRecord is readRecord's success result: exactly one of the
// kind fields is set.
type decodedRecord struct {
	events event.Seq
	marker *history.RecoveryMarker
	health *obs.HealthRecord
	tomb   *Tombstone
	alert  *obsrules.Alert
}

// readRecord reads one WAL record of the given format version. A short
// read at any point is a torn record and comes back in terr (io.EOF
// exactly at a record boundary, io.ErrUnexpectedEOF or an
// implausible-header error otherwise); rerr is reserved for damage
// that cannot result from a crashed append — a CRC mismatch over a
// full-length payload (errCRCMismatch, which the caller may skip), or
// a CRC-valid record whose header and payload disagree. Exactly one
// kind field of the returned record is set on success.
func readRecord(br *bufio.Reader, version byte) (rec decodedRecord, terr, rerr error) {
	h, err := readHeader(br, version)
	if err != nil {
		return rec, err, nil
	}
	// Pre-size only a bounded buffer and grow as real bytes arrive
	// (io.CopyN), so a lying sub-cap length field still cannot allocate
	// more than the input actually backs — the same guard
	// event.ReadBinary applies to its count field.
	const maxPayloadPrealloc = 64 << 10
	prealloc := int(h.payloadLen)
	if prealloc > maxPayloadPrealloc {
		prealloc = maxPayloadPrealloc
	}
	pbuf := bytes.NewBuffer(make([]byte, 0, prealloc))
	if _, err := io.CopyN(pbuf, br, int64(h.payloadLen)); err != nil {
		return rec, noEOFBoundary(err), nil
	}
	payload := pbuf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != h.sum {
		// The payload is full-length, so this is no crash tear (an
		// append-only tear is always a prefix, i.e. a short read):
		// corruption of this one record, wherever it appears.
		return rec, nil, fmt.Errorf("%w (got %08x, header says %08x)", errCRCMismatch, got, h.sum)
	}

	// The CRC passed, so header/payload disagreement below is a writer
	// bug, not a torn write.
	if h.typ == recMarker {
		m, err := decodeMarker(payload)
		if err != nil {
			return rec, nil, fmt.Errorf("decode marker payload: %w", err)
		}
		if m.Monitor != h.monitor || m.Horizon != h.first || m.Horizon != h.last || m.Dropped != int(h.count) {
			return rec, nil, fmt.Errorf("marker header (monitor %q, horizon %d..%d, %d dropped) disagrees with payload (monitor %q, horizon %d, %d dropped)",
				h.monitor, h.first, h.last, h.count, m.Monitor, m.Horizon, m.Dropped)
		}
		rec.marker = &m
		return rec, nil, nil
	}

	if h.typ == recHealth {
		hr, err := decodeHealth(payload)
		if err != nil {
			return rec, nil, fmt.Errorf("decode health payload: %w", err)
		}
		if h.monitor != "" || hr.Seq != h.first || hr.Seq != h.last || h.count != 0 {
			return rec, nil, fmt.Errorf("health header (monitor %q, horizon %d..%d, count %d) disagrees with payload (horizon %d)",
				h.monitor, h.first, h.last, h.count, hr.Seq)
		}
		rec.health = &hr
		return rec, nil, nil
	}

	if h.typ == recAlert {
		a, err := decodeAlert(payload)
		if err != nil {
			return rec, nil, fmt.Errorf("decode alert payload: %w", err)
		}
		if h.monitor != "" || a.Seq != h.first || a.Seq != h.last || h.count != 0 {
			return rec, nil, fmt.Errorf("alert header (monitor %q, horizon %d..%d, count %d) disagrees with payload (horizon %d)",
				h.monitor, h.first, h.last, h.count, a.Seq)
		}
		rec.alert = &a
		return rec, nil, nil
	}

	if h.typ == recTombstone {
		tb, err := decodeTombstone(payload)
		if err != nil {
			return rec, nil, fmt.Errorf("decode tombstone payload: %w", err)
		}
		if h.monitor != "" || tb.Horizon != h.first || tb.Horizon != h.last || h.count != saturatingUint32(tb.Events) {
			return rec, nil, fmt.Errorf("tombstone header (monitor %q, horizon %d..%d, count %d) disagrees with payload (horizon %d, %d events)",
				h.monitor, h.first, h.last, h.count, tb.Horizon, tb.Events)
		}
		rec.tomb = &tb
		return rec, nil, nil
	}

	events, err := event.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return rec, nil, fmt.Errorf("decode payload: %w", err)
	}
	seg := Segment{Monitor: h.monitor, Events: events}
	if len(events) != int(h.count) || seg.First() != h.first || seg.Last() != h.last {
		return rec, nil, fmt.Errorf("header (monitor %q, %d events, seq %d..%d) disagrees with payload (%d events, seq %d..%d)",
			h.monitor, h.count, h.first, h.last, len(events), seg.First(), seg.Last())
	}
	for _, e := range events {
		if e.Monitor != seg.Monitor {
			return rec, nil, fmt.Errorf("event %d belongs to monitor %q, record header says %q", e.Seq, e.Monitor, seg.Monitor)
		}
	}
	rec.events = events
	return rec, nil, nil
}

// noEOFBoundary maps io.EOF mid-record to io.ErrUnexpectedEOF so only
// a boundary EOF reads as a clean end of file.
func noEOFBoundary(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// baseName is filepath.Base shared by the scanner and the sink so
// FileSummary.Name is always the bare segment-file name.
func baseName(name string) string { return filepath.Base(name) }

// RecordReader holds one WAL file open for repeated record point
// reads — the streaming compactor's input cursor: a header-only scan
// (ScanFileRecords) locates every record, then a RecordReader decodes
// them one at a time in whatever order the merge needs, so a
// multi-gigabyte file never has to be resident at once. Unlike the
// one-shot ReadMarkerAt family it amortises the open across the whole
// merge. Not safe for concurrent use.
type RecordReader struct {
	name    string
	f       *os.File
	version byte
	br      *bufio.Reader
}

// OpenRecordReader opens the file and validates its WAL magic.
func OpenRecordReader(name string) (*RecordReader, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("export: open wal file: %w", err)
	}
	var magic [5]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("export: %s: read magic: %w", name, err)
	}
	version := magic[4]
	if [4]byte(magic[:4]) != walMagicPrefix || version < walVersion1 || version > walVersionLatest {
		f.Close()
		return nil, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	return &RecordReader{name: name, f: f, version: version, br: bufio.NewReader(f)}, nil
}

// ReadAt decodes the single record at the given byte offset. A
// CRC-corrupt record comes back as an error wrapping ErrCorruptRecord
// (the reader stays usable — the stream position is re-seeked on every
// call); a torn record is an error too, since point reads target
// offsets a header scan already validated.
func (r *RecordReader) ReadAt(offset int64) (Record, error) {
	if offset < 5 {
		return Record{}, fmt.Errorf("export: %s: implausible record offset %d", r.name, offset)
	}
	if _, err := r.f.Seek(offset, io.SeekStart); err != nil {
		return Record{}, fmt.Errorf("export: %s: seek record: %w", r.name, err)
	}
	r.br.Reset(r.f)
	rec, terr, rerr := readRecord(r.br, r.version)
	if rerr != nil {
		return Record{}, fmt.Errorf("export: %s offset %d: %w", r.name, offset, rerr)
	}
	if terr != nil {
		return Record{}, fmt.Errorf("export: %s offset %d: torn record: %w", r.name, offset, terr)
	}
	switch {
	case rec.marker != nil:
		return Record{Marker: rec.marker}, nil
	case rec.health != nil:
		return Record{Health: rec.health}, nil
	case rec.tomb != nil:
		return Record{Tombstone: rec.tomb}, nil
	case rec.alert != nil:
		return Record{Alert: rec.alert}, nil
	}
	return Record{Segment: &Segment{Monitor: rec.events[0].Monitor, Events: rec.events}}, nil
}

// Close releases the underlying file.
func (r *RecordReader) Close() error { return r.f.Close() }
