package export

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"robustmon/internal/event"
	"robustmon/internal/history"
)

// ErrBadWALMagic reports that a file in the export directory does not
// start with the WAL header.
var ErrBadWALMagic = errors.New("export: bad wal magic")

// Replay is the result of reading an export directory back.
type Replay struct {
	// Events is the recorded trace merged into the global <L order —
	// what history.DB.Full() of a WithFullTrace run would have
	// returned.
	Events event.Seq
	// Markers are the recovery markers found in the WAL, in record
	// order (which is reset order — the exporter's single writer
	// serialises them). Each marks a shard-local online reset: the
	// named monitor's events at or below Marker.Horizon that were still
	// buffered at reset time were discarded unreplayed, so Events has a
	// deliberate gap there and violations straddling the horizon on
	// that monitor may be reset artefacts. Nil for a run that never
	// reset (including every format-v1 WAL).
	Markers []history.RecoveryMarker
	// Files and Segments count the WAL files and valid records read
	// (Segments excludes marker records).
	Files, Segments int
	// Recovered reports that the newest file ended in a torn record
	// (crash mid-write); the tail was dropped and Events holds
	// everything up to the last valid record.
	Recovered bool
	// TruncatedFile names the file with the torn tail (empty when
	// Recovered is false).
	TruncatedFile string
}

// ReadDir replays an export directory written by WALSink: every valid
// record of every segment file, k-way-merged (event.Merge) back into
// the global sequence order. Records land in the WAL in drain order,
// which may interleave monitors arbitrarily — each record's payload is
// seq-sorted, and the merge restores the total order.
//
// A torn record — short header, short payload, or a zero-filled tail
// block — is tolerated only at the tail of the newest file, where it
// is the expected signature of a crash mid-write: the tail is dropped
// and Replay.Recovered is set. A torn record in any older file, or a
// CRC mismatch over a full-length payload anywhere (an append-only
// tear is a prefix, never a full-length scramble), is corruption and
// an error.
func ReadDir(dir string) (*Replay, error) {
	names, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("export: no %s files in %s", walExt, dir)
	}
	rep := &Replay{Files: len(names)}
	var payloads []event.Seq
	for i, name := range names {
		segs, markers, torn, err := readWALFile(name)
		if err != nil {
			return nil, err
		}
		if torn != nil {
			if i != len(names)-1 {
				return nil, fmt.Errorf("export: %s: %w (not the newest file — corruption, not a crash tail)", name, torn)
			}
			rep.Recovered = true
			rep.TruncatedFile = name
		}
		payloads = append(payloads, segs...)
		rep.Markers = append(rep.Markers, markers...)
	}
	rep.Segments = len(payloads)
	rep.Events = event.Merge(payloads...)
	return rep, nil
}

// readWALFile reads one segment file (either format version). It
// returns the segment payloads and recovery markers read, plus a
// non-nil torn error when the file ends mid-record (the valid prefix
// is still returned) — the caller decides whether a torn tail is
// acceptable for this file.
func readWALFile(name string) (segs []event.Seq, markers []history.RecoveryMarker, torn error, err error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("export: open wal file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// Even the magic can be torn: a crash right after file creation.
		return nil, nil, fmt.Errorf("torn wal header: %w", err), nil
	}
	version := magic[4]
	if [4]byte(magic[:4]) != walMagicPrefix || version < walVersion1 || version > walVersionLatest {
		return nil, nil, nil, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	for {
		events, marker, terr, rerr := readRecord(br, version)
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("export: %s record %d: %w", name, len(segs)+len(markers), rerr)
		}
		if terr != nil {
			if terr == io.EOF {
				return segs, markers, nil, nil // EOF exactly at a record boundary: clean end
			}
			return segs, markers, terr, nil
		}
		if marker != nil {
			markers = append(markers, *marker)
		} else {
			segs = append(segs, events)
		}
	}
}

// readRecord reads one WAL record of the given format version. A short
// read at any point is a torn record and comes back in terr (io.EOF
// exactly at a record boundary, io.ErrUnexpectedEOF or an
// implausible-header error otherwise); rerr is reserved for damage
// that cannot result from a crashed append — a CRC mismatch over a
// full-length payload, or a CRC-valid record whose header and payload
// disagree. Exactly one of events / marker is set on success.
func readRecord(br *bufio.Reader, version byte) (events event.Seq, marker *history.RecoveryMarker, terr, rerr error) {
	typ := recSegment
	var scratch [8]byte
	if version >= walVersion2 {
		if _, err := io.ReadFull(br, scratch[:1]); err != nil {
			return nil, nil, err, nil // io.EOF here = clean boundary
		}
		typ = scratch[0]
		if typ != recSegment && typ != recMarker {
			// No writer emits such a type, but a torn tail leaves
			// arbitrary bytes behind — torn at the tail, corruption
			// elsewhere (the caller decides which).
			return nil, nil, fmt.Errorf("export: unknown record type %d", typ), nil
		}
	}
	if _, err := io.ReadFull(br, scratch[:2]); err != nil {
		if version >= walVersion2 {
			// The type byte was already consumed: EOF here is mid-record.
			err = noEOFBoundary(err)
		}
		return nil, nil, err, nil // v1: io.EOF here = clean boundary
	}
	monLen := int(binary.LittleEndian.Uint16(scratch[:2]))
	if monLen > maxMonitorName {
		// The writer refuses such names, so these bytes were never the
		// start of a record — but a torn header leaves arbitrary bytes
		// behind, so at the tail this still reads as a torn record.
		return nil, nil, fmt.Errorf("export: monitor name %d bytes long (limit %d)", monLen, maxMonitorName), nil
	}
	mon := make([]byte, monLen)
	if _, err := io.ReadFull(br, mon); err != nil {
		return nil, nil, noEOFBoundary(err), nil
	}
	var first, last int64
	var count, payloadLen, sum uint32
	for _, dst := range []any{&first, &last, &count, &payloadLen, &sum} {
		n := 8
		if _, ok := dst.(*uint32); ok {
			n = 4
		}
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, nil, noEOFBoundary(err), nil
		}
		switch p := dst.(type) {
		case *int64:
			*p = int64(binary.LittleEndian.Uint64(scratch[:8]))
		case *uint32:
			*p = binary.LittleEndian.Uint32(scratch[:4])
		}
	}
	// Guard the allocation before trusting the length field: a torn or
	// bit-flipped header must not make the reader balloon.
	const maxPayload = 1 << 30
	if payloadLen > maxPayload {
		return nil, nil, fmt.Errorf("export: implausible payload length %d", payloadLen), nil
	}
	if typ == recSegment && count == 0 {
		// The writer skips empty segments, so no real segment record has
		// count 0 — but a filesystem that zero-fills a torn tail block
		// produces exactly this shape (in v2 the zero fill also reads as
		// type 0 = segment). Torn, not corrupt. Markers are exempt: a
		// reset that found nothing buffered legitimately drops 0 events.
		return nil, nil, fmt.Errorf("export: zero-count record (zero-filled torn tail)"), nil
	}
	// Pre-size only a bounded buffer and grow as real bytes arrive
	// (io.CopyN), so a lying sub-cap length field still cannot allocate
	// more than the input actually backs — the same guard
	// event.ReadBinary applies to its count field.
	const maxPayloadPrealloc = 64 << 10
	prealloc := int(payloadLen)
	if prealloc > maxPayloadPrealloc {
		prealloc = maxPayloadPrealloc
	}
	pbuf := bytes.NewBuffer(make([]byte, 0, prealloc))
	if _, err := io.CopyN(pbuf, br, int64(payloadLen)); err != nil {
		return nil, nil, noEOFBoundary(err), nil
	}
	payload := pbuf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != sum {
		// The payload is full-length, so this is no crash tear (an
		// append-only tear is always a prefix, i.e. a short read):
		// corruption wherever it appears.
		return nil, nil, nil, fmt.Errorf("record CRC mismatch (got %08x, header says %08x)", got, sum)
	}

	// The CRC passed, so header/payload disagreement below is a writer
	// bug, not a torn write.
	if typ == recMarker {
		m, err := decodeMarker(payload)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("decode marker payload: %w", err)
		}
		if m.Monitor != string(mon) || m.Horizon != first || m.Horizon != last || m.Dropped != int(count) {
			return nil, nil, nil, fmt.Errorf("marker header (monitor %q, horizon %d..%d, %d dropped) disagrees with payload (monitor %q, horizon %d, %d dropped)",
				mon, first, last, count, m.Monitor, m.Horizon, m.Dropped)
		}
		return nil, &m, nil, nil
	}

	events, err := event.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("decode payload: %w", err)
	}
	seg := Segment{Monitor: string(mon), Events: events}
	if len(events) != int(count) || seg.First() != first || seg.Last() != last {
		return nil, nil, nil, fmt.Errorf("header (monitor %q, %d events, seq %d..%d) disagrees with payload (%d events, seq %d..%d)",
			mon, count, first, last, len(events), seg.First(), seg.Last())
	}
	for _, e := range events {
		if e.Monitor != seg.Monitor {
			return nil, nil, nil, fmt.Errorf("event %d belongs to monitor %q, record header says %q", e.Seq, e.Monitor, seg.Monitor)
		}
	}
	return events, nil, nil, nil
}

// noEOFBoundary maps io.EOF mid-record to io.ErrUnexpectedEOF so only
// a boundary EOF reads as a clean end of file.
func noEOFBoundary(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
