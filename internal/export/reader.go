package export

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"robustmon/internal/event"
)

// ErrBadWALMagic reports that a file in the export directory does not
// start with the WAL header.
var ErrBadWALMagic = errors.New("export: bad wal magic")

// Replay is the result of reading an export directory back.
type Replay struct {
	// Events is the recorded trace merged into the global <L order —
	// what history.DB.Full() of a WithFullTrace run would have
	// returned.
	Events event.Seq
	// Files and Segments count the WAL files and valid records read.
	Files, Segments int
	// Recovered reports that the newest file ended in a torn record
	// (crash mid-write); the tail was dropped and Events holds
	// everything up to the last valid record.
	Recovered bool
	// TruncatedFile names the file with the torn tail (empty when
	// Recovered is false).
	TruncatedFile string
}

// ReadDir replays an export directory written by WALSink: every valid
// record of every segment file, k-way-merged (event.Merge) back into
// the global sequence order. Records land in the WAL in drain order,
// which may interleave monitors arbitrarily — each record's payload is
// seq-sorted, and the merge restores the total order.
//
// A torn record — short header, short payload, or a zero-filled tail
// block — is tolerated only at the tail of the newest file, where it
// is the expected signature of a crash mid-write: the tail is dropped
// and Replay.Recovered is set. A torn record in any older file, or a
// CRC mismatch over a full-length payload anywhere (an append-only
// tear is a prefix, never a full-length scramble), is corruption and
// an error.
func ReadDir(dir string) (*Replay, error) {
	names, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("export: no %s files in %s", walExt, dir)
	}
	rep := &Replay{Files: len(names)}
	var payloads []event.Seq
	for i, name := range names {
		segs, torn, err := readWALFile(name)
		if err != nil {
			return nil, err
		}
		if torn != nil {
			if i != len(names)-1 {
				return nil, fmt.Errorf("export: %s: %w (not the newest file — corruption, not a crash tail)", name, torn)
			}
			rep.Recovered = true
			rep.TruncatedFile = name
		}
		payloads = append(payloads, segs...)
	}
	rep.Segments = len(payloads)
	rep.Events = event.Merge(payloads...)
	return rep, nil
}

// readWALFile reads one segment file. It returns the record payloads
// read, plus a non-nil torn error when the file ends mid-record (the
// valid prefix is still returned) — the caller decides whether a torn
// tail is acceptable for this file.
func readWALFile(name string) (segs []event.Seq, torn error, err error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, fmt.Errorf("export: open wal file: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		// Even the magic can be torn: a crash right after file creation.
		return nil, fmt.Errorf("torn wal header: %w", err), nil
	}
	if magic != walMagic {
		return nil, nil, fmt.Errorf("%w in %s", ErrBadWALMagic, name)
	}
	for {
		events, terr, rerr := readRecord(br)
		if rerr != nil {
			return nil, nil, fmt.Errorf("export: %s record %d: %w", name, len(segs), rerr)
		}
		if terr != nil {
			if terr == io.EOF {
				return segs, nil, nil // EOF exactly at a record boundary: clean end
			}
			return segs, terr, nil
		}
		segs = append(segs, events)
	}
}

// readRecord reads one WAL record. A short read at any point is a torn
// record and comes back in terr (io.EOF exactly at a record boundary,
// io.ErrUnexpectedEOF or an implausible-header error otherwise); rerr
// is reserved for damage that cannot result from a crashed append —
// a CRC mismatch over a full-length payload, or a CRC-valid record
// whose header and payload disagree.
func readRecord(br *bufio.Reader) (events event.Seq, terr, rerr error) {
	var scratch [8]byte
	if _, err := io.ReadFull(br, scratch[:2]); err != nil {
		return nil, err, nil // io.EOF here = clean boundary
	}
	monLen := int(binary.LittleEndian.Uint16(scratch[:2]))
	if monLen > maxMonitorName {
		// The writer refuses such names, so these bytes were never the
		// start of a record — but a torn header leaves arbitrary bytes
		// behind, so at the tail this still reads as a torn record.
		return nil, fmt.Errorf("export: monitor name %d bytes long (limit %d)", monLen, maxMonitorName), nil
	}
	mon := make([]byte, monLen)
	if _, err := io.ReadFull(br, mon); err != nil {
		return nil, noEOFBoundary(err), nil
	}
	var first, last int64
	var count, payloadLen, sum uint32
	for _, dst := range []any{&first, &last, &count, &payloadLen, &sum} {
		n := 8
		if _, ok := dst.(*uint32); ok {
			n = 4
		}
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, noEOFBoundary(err), nil
		}
		switch p := dst.(type) {
		case *int64:
			*p = int64(binary.LittleEndian.Uint64(scratch[:8]))
		case *uint32:
			*p = binary.LittleEndian.Uint32(scratch[:4])
		}
	}
	// Guard the allocation before trusting the length field: a torn or
	// bit-flipped header must not make the reader balloon.
	const maxPayload = 1 << 30
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("export: implausible payload length %d", payloadLen), nil
	}
	if count == 0 {
		// The writer skips empty segments, so no real record has count
		// 0 — but a filesystem that zero-fills a torn tail block
		// produces exactly this shape. Torn, not corrupt.
		return nil, fmt.Errorf("export: zero-count record (zero-filled torn tail)"), nil
	}
	// Pre-size only a bounded buffer and grow as real bytes arrive
	// (io.CopyN), so a lying sub-cap length field still cannot allocate
	// more than the input actually backs — the same guard
	// event.ReadBinary applies to its count field.
	const maxPayloadPrealloc = 64 << 10
	prealloc := int(payloadLen)
	if prealloc > maxPayloadPrealloc {
		prealloc = maxPayloadPrealloc
	}
	pbuf := bytes.NewBuffer(make([]byte, 0, prealloc))
	if _, err := io.CopyN(pbuf, br, int64(payloadLen)); err != nil {
		return nil, noEOFBoundary(err), nil
	}
	payload := pbuf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != sum {
		// The payload is full-length, so this is no crash tear (an
		// append-only tear is always a prefix, i.e. a short read):
		// corruption wherever it appears.
		return nil, nil, fmt.Errorf("record CRC mismatch (got %08x, header says %08x)", got, sum)
	}
	events, err := event.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, fmt.Errorf("decode payload: %w", err)
	}
	// The CRC passed, so header/payload disagreement is a writer bug,
	// not a torn write.
	seg := Segment{Monitor: string(mon), Events: events}
	if len(events) != int(count) || seg.First() != first || seg.Last() != last {
		return nil, nil, fmt.Errorf("header (monitor %q, %d events, seq %d..%d) disagrees with payload (%d events, seq %d..%d)",
			mon, count, first, last, len(events), seg.First(), seg.Last())
	}
	for _, e := range events {
		if e.Monitor != seg.Monitor {
			return nil, nil, fmt.Errorf("event %d belongs to monitor %q, record header says %q", e.Seq, e.Monitor, seg.Monitor)
		}
	}
	return events, nil, nil
}

// noEOFBoundary maps io.EOF mid-record to io.ErrUnexpectedEOF so only
// a boundary EOF reads as a clean end of file.
func noEOFBoundary(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
