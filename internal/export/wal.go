package export

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
)

// The on-disk WAL layout. A directory of numbered files
// ("00000001.wal", …); each file starts with the 5-byte magic (4-byte
// prefix + format version) and holds a sequence of records. In format
// version 2 every record begins with a one-byte record type; version 1
// files (written before recovery markers existed) have no type byte
// and hold only segment records. All record types share one header:
//
//	uint8   record type (v2 only: 0 = segment, 1 = recovery marker,
//	                     2 = health snapshot, 3 = retention tombstone,
//	                     4 = threshold alert)
//	uint16  len(monitor)      ┐
//	bytes   monitor           │ little-endian record header
//	int64   first seq         │ (marker: reset horizon twice;
//	int64   last seq          │  health: capture horizon twice)
//	uint32  event count       │ (marker: discarded-event count;
//	uint32  len(payload)      │  health: 0)
//	uint32  CRC-32 (IEEE) of payload ┘
//	bytes   payload
//
// A segment record's payload is event.WriteBinary of the drained
// events — itself a well-formed single-segment trace. A recovery
// marker's payload is the self-contained marker blob of
// encodeMarker: the shard-local reset's horizon, discarded-event
// count, triggering rule/pid and instant. A threshold-alert record's
// payload is the self-contained blob of encodeAlert: one rule
// transition (fire or clear) of the self-watching rule engine, pinned
// like a health record to its evaluation instant and global-sequence
// horizon (the monitor field is empty — an alert judges the pipeline,
// not one monitor). A health-snapshot record's
// payload is the self-contained blob of encodeHealth: a periodic
// obs.Snapshot of the detector's metrics registry pinned to its
// capture instant and global-sequence horizon (the monitor field is
// empty — health is per-process, not per-monitor). A retention
// tombstone's payload is the self-contained blob of encodeTombstone:
// the horizon below which retention may have dropped records, plus the
// cumulative accounting of exactly what was dropped (the monitor field
// is empty — the tombstone describes the whole store). The header
// duplicates the seq range and count so a reader can index a WAL
// without decoding payloads, and the CRC turns a torn write into a
// detectable truncation instead of silent corruption. Files are
// fsynced when rotated and on Flush/Close; a crash can therefore only
// lose or tear the tail of the newest file, which the reader recovers
// from by dropping the torn record.

// walMagicPrefix identifies a WAL segment file; the byte that follows
// it on disk is the format version.
var walMagicPrefix = [4]byte{'R', 'M', 'W', 'L'}

// The WAL format versions the reader accepts. The writer always writes
// the current version.
const (
	walVersion1      = 1 // segments only, no record-type byte
	walVersion2      = 2 // record-type byte: segments + recovery markers
	walVersionLatest = walVersion2
)

// Record types (format version ≥ 2). recHealth, recTombstone and
// recAlert ride the same v2 framing recMarker introduced: the header
// layout is unchanged, so the format version does not bump — v1 and
// marker-era v2 files read exactly as before, and only tooling older
// than the new record type refuses a file containing one.
const (
	recSegment   byte = 0
	recMarker    byte = 1
	recHealth    byte = 2
	recTombstone byte = 3
	recAlert     byte = 4
)

// walExt is the segment-file extension.
const walExt = ".wal"

// maxMonitorName bounds the monitor-id field of a record header.
const maxMonitorName = 1 << 10

// DefaultMaxFileBytes is the rotation threshold when WALConfig leaves
// MaxFileBytes zero: a file is closed (and fsynced) once it grows past
// this many bytes.
const DefaultMaxFileBytes = 8 << 20

// SealedSink consumes sealed-file summaries. A WAL file is "sealed"
// when it has been flushed, fsynced and closed — rotation or Close —
// so a summary handed to OnSeal always describes durable bytes. This
// is the incremental-maintenance seam of the trace store (the index
// maintainer is one SealedSink; a network shipper is another), and
// WALConfig.OnSeal fans each seal out to any number of them.
//
// OnSeal is called from whatever goroutine drives the sink (the
// exporter's writer); a slow consumer stalls the write path, so do
// real work asynchronously. A returned error is reported through
// WALConfig.OnSealError and counted, but never fails the write path
// and never starves the other consumers: every registered sink sees
// every seal.
type SealedSink interface {
	OnSeal(fs FileSummary) error
}

// SealedSinkFunc adapts a plain function to the SealedSink interface.
type SealedSinkFunc func(fs FileSummary) error

// OnSeal calls f.
func (f SealedSinkFunc) OnSeal(fs FileSummary) error { return f(fs) }

// WALConfig parameterises a WALSink.
type WALConfig struct {
	// MaxFileBytes rotates to a new segment file once the current one
	// exceeds this size (default DefaultMaxFileBytes). Rotation is the
	// durability boundary: the outgoing file is flushed and fsynced
	// before the next one opens.
	MaxFileBytes int64
	// RotateEvery, when positive, additionally rotates by age: a write
	// or Flush that finds the current file older than this seals it
	// first. Size-based rotation alone lets an idle monitor's trickle
	// sit in one open (undurable, uncompactable) file indefinitely;
	// age-based rotation bounds how long any record stays outside a
	// sealed, index-visible, compactable segment. The check runs at
	// write/flush time — a sink nobody touches seals nothing, which is
	// fine: it also wrote nothing new.
	RotateEvery time.Duration
	// Clock is the time source for age-based rotation (default: wall
	// clock). Only consulted when RotateEvery is set.
	Clock clock.Clock
	// SyncEveryWrite additionally fsyncs after every record — maximum
	// durability for crash-recovery tests; too slow for production.
	SyncEveryWrite bool
	// OnSeal holds the consumers notified with the sealed file's summary
	// each time a file is rotated or closed. Every consumer sees every
	// seal, in registration order; one consumer's error is routed to
	// OnSealError (and counted as export_wal_seal_errors_total) without
	// skipping the rest and without failing the write path. Wire
	// index.NewMaintainer(dir) here and the directory's index tracks
	// every sealed segment for free; wire a network shipper alongside it
	// and sealed segments stream off-box too.
	OnSeal []SealedSink
	// OnSealError, when set, receives each error an OnSeal consumer
	// returns. Seal errors are advisory — the file is already durable
	// locally — so they are reported, not propagated.
	OnSealError func(error)
	// OnRotate is the single-consumer ancestor of OnSeal, retained for
	// compatibility; when set it is called (before the OnSeal fan-out)
	// with the same summary.
	//
	// Deprecated: use OnSeal, which supports multiple consumers and
	// error reporting.
	OnRotate func(FileSummary)
	// Obs, when set, instruments the sink: export_wal_bytes_total
	// (header + payload bytes written), export_wal_records_total,
	// export_wal_rotations_total and the export_wal_fsync_ns latency
	// histogram. Nil disables at zero cost (see internal/obs).
	Obs *obs.Registry
}

// walMetrics are the sink's obs handles; the zero value (all nil) is
// the disabled mode.
type walMetrics struct {
	bytes      *obs.Counter
	records    *obs.Counter
	rotations  *obs.Counter
	sealErrors *obs.Counter
	fsyncNs    *obs.Histogram
}

func newWALMetrics(reg *obs.Registry) walMetrics {
	if reg == nil {
		return walMetrics{}
	}
	return walMetrics{
		bytes:      reg.Counter("export_wal_bytes_total"),
		records:    reg.Counter("export_wal_records_total"),
		rotations:  reg.Counter("export_wal_rotations_total"),
		sealErrors: reg.Counter("export_wal_seal_errors_total"),
		fsyncNs:    reg.Histogram("export_wal_fsync_ns"),
	}
}

// WALSink persists exported segments to a directory of numbered,
// CRC-protected segment files. Construct with NewWALSink; it is driven
// by the exporter's writer goroutine and is not safe for concurrent
// use.
type WALSink struct {
	dir  string
	cfg  WALConfig
	next int // number of the next file to create

	f    *os.File
	bw   *bufio.Writer
	size int64
	// hdr is the record-header scratch buffer, reused across every
	// record the sink ever writes (nothing downstream retains it:
	// summaryBuilder folds it into a CRC and lets go).
	hdr      []byte
	openedAt time.Time
	cur      *summaryBuilder // summary of the file being written
	met      walMetrics
}

// NewWALSink opens (creating if needed) dir for appending. An existing
// WAL is never clobbered: numbering continues after the highest
// existing file.
func NewWALSink(dir string, cfg WALConfig) (*WALSink, error) {
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = DefaultMaxFileBytes
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("export: create wal dir: %w", err)
	}
	names, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(names) > 0 {
		last := strings.TrimSuffix(filepath.Base(names[len(names)-1]), walExt)
		if _, err := fmt.Sscanf(last, "%d", &next); err != nil {
			return nil, fmt.Errorf("export: bad wal file name %q", names[len(names)-1])
		}
		next++
	}
	return &WALSink{dir: dir, cfg: cfg, next: next, met: newWALMetrics(cfg.Obs)}, nil
}

// walFiles lists dir's segment files sorted by name — numeric order,
// since names are zero-padded.
func walFiles(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"+walExt))
	if err != nil {
		return nil, fmt.Errorf("export: list wal dir: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Dir returns the sink's directory.
func (w *WALSink) Dir() string { return w.dir }

// SealedFiles reports how many sealed segment files are on disk —
// the rotated backlog a compactor can merge. It counts the directory
// (one readdir per call — the exporter polls it once per written
// segment, which is drain-rhythm, not event-rhythm), not the sink's
// monotonic file number: compaction shrinks the directory, and the
// backlog must shrink with it or a threshold trigger would keep
// firing forever after first crossing it. Files inherited from
// earlier sink sessions count too, since numbering resumes after
// them; the file currently being written does not.
func (w *WALSink) SealedFiles() int {
	names, err := walFiles(w.dir)
	if err != nil {
		return 0
	}
	n := len(names)
	if w.f != nil {
		n-- // the active file is on disk but not sealed
	}
	if n < 0 {
		n = 0
	}
	return n
}

// open starts the next numbered segment file.
func (w *WALSink) open() error {
	name := filepath.Join(w.dir, fmt.Sprintf("%08d%s", w.next, walExt))
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("export: create wal file: %w", err)
	}
	w.next++
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.size = 0
	w.openedAt = w.cfg.Clock.Now()
	w.cur = newSummaryBuilder(baseName(name), walVersionLatest)
	magic := append(append([]byte(nil), walMagicPrefix[:]...), walVersionLatest)
	if _, err := w.bw.Write(magic); err != nil {
		return fmt.Errorf("export: write wal magic: %w", err)
	}
	w.size += int64(len(magic))
	return nil
}

// WriteSegment appends one segment record and rotates if the file
// outgrew the threshold. The payload is encoded into a pooled buffer
// (event.AppendBinary), so steady-state segment writes allocate
// nothing per event.
func (w *WALSink) WriteSegment(seg Segment) error {
	if len(seg.Events) == 0 {
		return nil
	}
	// ~48 bytes/event covers typical traces; undersizing only costs
	// one growth step inside AppendBinary (and the grown buffer is
	// what re-enters the pool).
	p := getPayloadBuf(16 + 48*len(seg.Events))
	*p = event.AppendBinary((*p)[:0], seg.Events)
	err := w.writeRecord(recSegment, seg.Monitor,
		seg.First(), seg.Last(), uint32(len(seg.Events)), *p)
	putPayloadBuf(p)
	return err
}

// WriteMarker appends one recovery-marker record — the durable trace of
// a shard-local online reset (see history.RecoveryMarker). It
// implements the optional MarkerSink extension.
func (w *WALSink) WriteMarker(m history.RecoveryMarker) error {
	p := getPayloadBuf(64 + len(m.Rule) + len(m.Monitor))
	*p = appendMarker((*p)[:0], m)
	err := w.writeRecord(recMarker, m.Monitor,
		m.Horizon, m.Horizon, uint32(m.Dropped), *p)
	putPayloadBuf(p)
	return err
}

// WriteHealth appends one health-snapshot record — a periodic capture
// of the detector's metrics registry, pinned to its global-sequence
// horizon so offline tooling can place it in the trace's timeline. It
// implements the optional HealthSink extension. The monitor field is
// empty: health describes the whole process, not one monitor.
func (w *WALSink) WriteHealth(h obs.HealthRecord) error {
	p := getPayloadBuf(256)
	*p = appendHealth((*p)[:0], h)
	err := w.writeRecord(recHealth, "", h.Seq, h.Seq, 0, *p)
	putPayloadBuf(p)
	return err
}

// WriteAlert appends one threshold-alert record — the durable trace of
// a rule transition in the self-watching engine (see
// internal/obs/rules). It implements the optional AlertSink extension.
// The monitor field is empty (an alert judges the pipeline, not one
// monitor); the header carries the alert's sequence horizon twice, so
// the index can place it without decoding the payload.
func (w *WALSink) WriteAlert(a obsrules.Alert) error {
	p := getPayloadBuf(64 + len(a.Rule) + len(a.Metric) + len(a.Origin))
	*p = appendAlert((*p)[:0], a)
	err := w.writeRecord(recAlert, "", a.Seq, a.Seq, 0, *p)
	putPayloadBuf(p)
	return err
}

// WriteTombstone appends one retention-tombstone record — the durable
// trace of a retention pass that dropped whole segment files below a
// horizon (see internal/export/compact). It implements the optional
// TombstoneSink extension. The monitor field is empty (the tombstone
// describes the whole store); the header carries the horizon as its
// seq range and the dropped-event total (saturated) as its count, so
// the index can place it without decoding the payload.
func (w *WALSink) WriteTombstone(t Tombstone) error {
	p := getPayloadBuf(128 + 32*len(t.Monitors))
	*p = appendTombstone((*p)[:0], t)
	err := w.writeRecord(recTombstone, "", t.Horizon, t.Horizon,
		saturatingUint32(t.Events), *p)
	putPayloadBuf(p)
	return err
}

// writeRecord appends one record of either type and rotates if the
// file outgrew the threshold.
func (w *WALSink) writeRecord(typ byte, monitor string, first, last int64, count uint32, payload []byte) error {
	if len(monitor) > maxMonitorName {
		return fmt.Errorf("export: monitor name %d bytes long (limit %d)", len(monitor), maxMonitorName)
	}
	if w.f != nil && w.stale() {
		// Age-based rotation: seal the old file before this record, so
		// the record lands in a fresh one and the backlog stays bounded
		// in time, not just in bytes.
		if err := w.rotate(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	w.hdr = appendRecordHeader(w.hdr[:0], typ, monitor, first, last, count, payload)
	if _, err := w.bw.Write(w.hdr); err != nil {
		return fmt.Errorf("export: write record header: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("export: write record payload: %w", err)
	}
	w.cur.add(&recHeader{
		typ: typ, monitor: monitor, first: first, last: last,
		count: count, payloadLen: uint32(len(payload)), raw: w.hdr,
	}, w.size)
	w.size += int64(len(w.hdr) + len(payload))
	w.met.records.Inc()
	w.met.bytes.Add(int64(len(w.hdr) + len(payload)))
	if w.cfg.SyncEveryWrite {
		if err := w.sync(); err != nil {
			return err
		}
	}
	if w.size >= w.cfg.MaxFileBytes {
		return w.rotate()
	}
	return nil
}

// sync flushes the buffered writer and fsyncs the current file.
func (w *WALSink) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("export: flush wal: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("export: fsync wal: %w", err)
	}
	w.met.fsyncNs.Observe(time.Since(start).Nanoseconds())
	return nil
}

// stale reports whether the current file outlived the age-rotation
// threshold.
func (w *WALSink) stale() bool {
	return w.cfg.RotateEvery > 0 && w.cfg.Clock.Now().Sub(w.openedAt) >= w.cfg.RotateEvery
}

// rotate seals the current file — flush, fsync, close — and arranges
// for the next write to open a fresh one. Everything before the
// rotation point is durable from here on; the sealed file's summary is
// then fanned out to OnRotate (deprecated single consumer) and every
// OnSeal consumer. One consumer's failure never starves another: the
// error goes to OnSealError and the seal-error counter, and the loop
// continues.
func (w *WALSink) rotate() error {
	if w.f == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("export: close wal file: %w", err)
	}
	w.f, w.bw = nil, nil
	w.met.rotations.Inc()
	if w.cur != nil && w.cur.sum.Records > 0 {
		fs := w.cur.done(w.size, false)
		if w.cfg.OnRotate != nil {
			w.cfg.OnRotate(fs)
		}
		for _, s := range w.cfg.OnSeal {
			if s == nil {
				continue
			}
			if err := s.OnSeal(fs); err != nil {
				w.met.sealErrors.Inc()
				if w.cfg.OnSealError != nil {
					w.cfg.OnSealError(err)
				}
			}
		}
	}
	w.cur = nil
	return nil
}

// Flush makes everything written so far durable without rotating —
// unless the current file outlived RotateEvery, in which case it is
// sealed instead, so periodic flushers give even an idle trickle
// bounded, compactable segments.
func (w *WALSink) Flush() error {
	if w.f != nil && w.stale() {
		return w.rotate()
	}
	return w.sync()
}

// Close seals the current file. The sink is unusable afterwards.
func (w *WALSink) Close() error { return w.rotate() }
