package export

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"robustmon/internal/event"
)

// The on-disk WAL layout. A directory of numbered files
// ("00000001.wal", …); each file starts with the 5-byte walMagic and
// holds a sequence of records. One record is one exported Segment:
//
//	uint16  len(monitor)      ┐
//	bytes   monitor           │ little-endian record header
//	int64   first seq         │
//	int64   last seq          │
//	uint32  event count       │
//	uint32  len(payload)      │
//	uint32  CRC-32 (IEEE) of payload ┘
//	bytes   payload = event.WriteBinary(segment events)
//
// The payload reuses the internal/event binary codec verbatim, so a
// record body is itself a well-formed single-segment trace. The header
// duplicates the seq range and count so a reader can index a WAL
// without decoding payloads, and the CRC turns a torn write into a
// detectable truncation instead of silent corruption. Files are
// fsynced when rotated and on Flush/Close; a crash can therefore only
// lose or tear the tail of the newest file, which the reader recovers
// from by dropping the torn record.

// walMagic identifies a WAL segment file; the trailing byte is a
// format version.
var walMagic = [5]byte{'R', 'M', 'W', 'L', 1}

// walExt is the segment-file extension.
const walExt = ".wal"

// maxMonitorName bounds the monitor-id field of a record header.
const maxMonitorName = 1 << 10

// DefaultMaxFileBytes is the rotation threshold when WALConfig leaves
// MaxFileBytes zero: a file is closed (and fsynced) once it grows past
// this many bytes.
const DefaultMaxFileBytes = 8 << 20

// WALConfig parameterises a WALSink.
type WALConfig struct {
	// MaxFileBytes rotates to a new segment file once the current one
	// exceeds this size (default DefaultMaxFileBytes). Rotation is the
	// durability boundary: the outgoing file is flushed and fsynced
	// before the next one opens.
	MaxFileBytes int64
	// SyncEveryWrite additionally fsyncs after every record — maximum
	// durability for crash-recovery tests; too slow for production.
	SyncEveryWrite bool
}

// WALSink persists exported segments to a directory of numbered,
// CRC-protected segment files. Construct with NewWALSink; it is driven
// by the exporter's writer goroutine and is not safe for concurrent
// use.
type WALSink struct {
	dir  string
	cfg  WALConfig
	next int // number of the next file to create

	f    *os.File
	bw   *bufio.Writer
	size int64
	hdr  bytes.Buffer
}

// NewWALSink opens (creating if needed) dir for appending. An existing
// WAL is never clobbered: numbering continues after the highest
// existing file.
func NewWALSink(dir string, cfg WALConfig) (*WALSink, error) {
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = DefaultMaxFileBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("export: create wal dir: %w", err)
	}
	names, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(names) > 0 {
		last := strings.TrimSuffix(filepath.Base(names[len(names)-1]), walExt)
		if _, err := fmt.Sscanf(last, "%d", &next); err != nil {
			return nil, fmt.Errorf("export: bad wal file name %q", names[len(names)-1])
		}
		next++
	}
	return &WALSink{dir: dir, cfg: cfg, next: next}, nil
}

// walFiles lists dir's segment files sorted by name — numeric order,
// since names are zero-padded.
func walFiles(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"+walExt))
	if err != nil {
		return nil, fmt.Errorf("export: list wal dir: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Dir returns the sink's directory.
func (w *WALSink) Dir() string { return w.dir }

// open starts the next numbered segment file.
func (w *WALSink) open() error {
	name := filepath.Join(w.dir, fmt.Sprintf("%08d%s", w.next, walExt))
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("export: create wal file: %w", err)
	}
	w.next++
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.size = 0
	if _, err := w.bw.Write(walMagic[:]); err != nil {
		return fmt.Errorf("export: write wal magic: %w", err)
	}
	w.size += int64(len(walMagic))
	return nil
}

// WriteSegment appends one record and rotates if the file outgrew the
// threshold.
func (w *WALSink) WriteSegment(seg Segment) error {
	if len(seg.Events) == 0 {
		return nil
	}
	if len(seg.Monitor) > maxMonitorName {
		return fmt.Errorf("export: monitor name %d bytes long (limit %d)", len(seg.Monitor), maxMonitorName)
	}
	if w.f == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	var payload bytes.Buffer
	if err := event.WriteBinary(&payload, seg.Events); err != nil {
		return fmt.Errorf("export: encode segment: %w", err)
	}
	w.hdr.Reset()
	var scratch [8]byte
	put := func(b []byte) { w.hdr.Write(b) }
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(seg.Monitor)))
	put(scratch[:2])
	w.hdr.WriteString(seg.Monitor)
	binary.LittleEndian.PutUint64(scratch[:], uint64(seg.First()))
	put(scratch[:])
	binary.LittleEndian.PutUint64(scratch[:], uint64(seg.Last()))
	put(scratch[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(seg.Events)))
	put(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(payload.Len()))
	put(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(payload.Bytes()))
	put(scratch[:4])
	if _, err := w.bw.Write(w.hdr.Bytes()); err != nil {
		return fmt.Errorf("export: write record header: %w", err)
	}
	if _, err := w.bw.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("export: write record payload: %w", err)
	}
	w.size += int64(w.hdr.Len() + payload.Len())
	if w.cfg.SyncEveryWrite {
		if err := w.sync(); err != nil {
			return err
		}
	}
	if w.size >= w.cfg.MaxFileBytes {
		return w.rotate()
	}
	return nil
}

// sync flushes the buffered writer and fsyncs the current file.
func (w *WALSink) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("export: flush wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("export: fsync wal: %w", err)
	}
	return nil
}

// rotate seals the current file — flush, fsync, close — and arranges
// for the next write to open a fresh one. Everything before the
// rotation point is durable from here on.
func (w *WALSink) rotate() error {
	if w.f == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("export: close wal file: %w", err)
	}
	w.f, w.bw = nil, nil
	return nil
}

// Flush makes everything written so far durable without rotating.
func (w *WALSink) Flush() error { return w.sync() }

// Close seals the current file. The sink is unusable afterwards.
func (w *WALSink) Close() error { return w.rotate() }
