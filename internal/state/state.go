// Package state models the scheduling state of a monitor (§3.1).
//
// A scheduling state is the 3-tuple ⟨EQ, CQ[], R#⟩ — the external
// (entry) waiting queue, the array of condition queues, and the number
// of currently available resources. Following §3.3.1, a checkpoint
// snapshot additionally records Running, the set of processes inside
// the monitor at checking time (a singleton under correct operation;
// we keep a set so that mutual-exclusion violations are observable).
package state

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// QueueEntry is one process on a snapshot queue, with its enqueue
// instant so the detector can evaluate Timer(Pid).
type QueueEntry struct {
	Pid   int64     `json:"pid"`
	Proc  string    `json:"proc"`
	Since time.Time `json:"since"`
}

// RunningEntry is one process inside the monitor at snapshot time, with
// the instant it entered (for Tmax).
type RunningEntry struct {
	Pid   int64     `json:"pid"`
	Since time.Time `json:"since"`
}

// Snapshot is the scheduling state of one monitor at a checkpoint.
type Snapshot struct {
	// Monitor names the monitor.
	Monitor string `json:"monitor"`
	// At is the checkpoint instant.
	At time.Time `json:"at"`
	// EQ is the entry queue, head first.
	EQ []QueueEntry `json:"eq"`
	// CQ maps condition names to their queues, head first.
	CQ map[string][]QueueEntry `json:"cq"`
	// Running is the set of processes inside the monitor (not waiting on
	// any queue). Correct operation keeps len(Running) ≤ 1.
	Running []RunningEntry `json:"running"`
	// Resources is R#, the number of available resources; meaningful for
	// communication-coordinator monitors (free buffer slots).
	Resources int `json:"resources"`
	// LastSeq is the sequence number of the last event recorded at or
	// before this snapshot; the next checking segment is (LastSeq, next].
	LastSeq int64 `json:"lastSeq"`
}

// EQPids returns the entry-queue pids, head first.
func (s Snapshot) EQPids() []int64 { return entryPids(s.EQ) }

// CQPids returns the pids of condition queue cond, head first.
func (s Snapshot) CQPids(cond string) []int64 { return entryPids(s.CQ[cond]) }

// RunningPids returns the pids inside the monitor, in recorded order.
func (s Snapshot) RunningPids() []int64 {
	out := make([]int64, len(s.Running))
	for i, r := range s.Running {
		out[i] = r.Pid
	}
	return out
}

// CondNames returns the condition names in the snapshot, sorted.
func (s Snapshot) CondNames() []string {
	names := make([]string, 0, len(s.CQ))
	for c := range s.CQ {
		names = append(names, c)
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy; detectors retain the previous snapshot
// across checkpoints and must not alias live monitor state.
func (s Snapshot) Clone() Snapshot {
	out := s
	out.EQ = append([]QueueEntry(nil), s.EQ...)
	out.Running = append([]RunningEntry(nil), s.Running...)
	out.CQ = make(map[string][]QueueEntry, len(s.CQ))
	for c, q := range s.CQ {
		out.CQ[c] = append([]QueueEntry(nil), q...)
	}
	return out
}

// String renders the paper's ⟨EQ, CQ[], R#⟩ tuple plus Running.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s⟨EQ=%v, CQ{", s.Monitor, s.EQPids())
	for i, c := range s.CondNames() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%v", c, s.CQPids(c))
	}
	fmt.Fprintf(&b, "}, R#=%d⟩ Running=%v", s.Resources, s.RunningPids())
	return b.String()
}

func entryPids(q []QueueEntry) []int64 {
	out := make([]int64, len(q))
	for i, e := range q {
		out[i] = e.Pid
	}
	return out
}

// Diff describes how two snapshots disagree, list by list. The
// detector uses it to turn a Step-2 comparison failure into a readable
// report.
type Diff struct {
	Field string // "EQ", "CQ[c]", "Running", "Resources"
	Got   string // reconstructed (from checking lists)
	Want  string // actual (from the snapshot)
}

// CompareLists reports the differences between reconstructed pid lists
// and the snapshot's actual queues. resources is the reconstructed R#;
// pass wantResources=false for monitor kinds without resource tracking.
func (s Snapshot) CompareLists(eq []int64, cq map[string][]int64, running []int64, resources int, wantResources bool) []Diff {
	var diffs []Diff
	if !equalPids(eq, s.EQPids()) {
		diffs = append(diffs, Diff{Field: "EQ", Got: fmt.Sprint(eq), Want: fmt.Sprint(s.EQPids())})
	}
	conds := make(map[string]bool, len(cq)+len(s.CQ))
	for c := range cq {
		conds[c] = true
	}
	for c := range s.CQ {
		conds[c] = true
	}
	names := make([]string, 0, len(conds))
	for c := range conds {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		if !equalPids(cq[c], s.CQPids(c)) {
			diffs = append(diffs, Diff{
				Field: "CQ[" + c + "]",
				Got:   fmt.Sprint(cq[c]),
				Want:  fmt.Sprint(s.CQPids(c)),
			})
		}
	}
	if !samePidSet(running, s.RunningPids()) {
		diffs = append(diffs, Diff{Field: "Running", Got: fmt.Sprint(running), Want: fmt.Sprint(s.RunningPids())})
	}
	if wantResources && resources != s.Resources {
		diffs = append(diffs, Diff{Field: "Resources", Got: fmt.Sprint(resources), Want: fmt.Sprint(s.Resources)})
	}
	return diffs
}

func equalPids(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// samePidSet compares ignoring order: the Running set has no meaningful
// internal order (a correct monitor holds at most one element anyway).
func samePidSet(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
