package state

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func sample() Snapshot {
	return Snapshot{
		Monitor: "buf",
		At:      t0,
		EQ: []QueueEntry{
			{Pid: 4, Proc: "Send", Since: t0.Add(-time.Second)},
			{Pid: 5, Proc: "Receive", Since: t0},
		},
		CQ: map[string][]QueueEntry{
			"notFull":  {{Pid: 2, Proc: "Send", Since: t0}},
			"notEmpty": {},
		},
		Running:   []RunningEntry{{Pid: 1, Since: t0}},
		Resources: 3,
		LastSeq:   17,
	}
}

func TestAccessors(t *testing.T) {
	t.Parallel()
	s := sample()
	if got := s.EQPids(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("EQPids = %v", got)
	}
	if got := s.CQPids("notFull"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CQPids(notFull) = %v", got)
	}
	if got := s.CQPids("absent"); len(got) != 0 {
		t.Fatalf("CQPids(absent) = %v, want empty", got)
	}
	if got := s.RunningPids(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("RunningPids = %v", got)
	}
	names := s.CondNames()
	if len(names) != 2 || names[0] != "notEmpty" || names[1] != "notFull" {
		t.Fatalf("CondNames = %v, want sorted [notEmpty notFull]", names)
	}
}

func TestCloneIsDeep(t *testing.T) {
	t.Parallel()
	s := sample()
	c := s.Clone()
	c.EQ[0].Pid = 99
	c.CQ["notFull"][0].Pid = 99
	c.Running[0].Pid = 99
	if s.EQ[0].Pid == 99 || s.CQ["notFull"][0].Pid == 99 || s.Running[0].Pid == 99 {
		t.Fatal("Clone shares backing storage with the original")
	}
}

func TestStringRendersTuple(t *testing.T) {
	t.Parallel()
	got := sample().String()
	for _, want := range []string{"EQ=[4 5]", "R#=3", "Running=[1]", "notFull=[2]"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestCompareListsAgreement(t *testing.T) {
	t.Parallel()
	s := sample()
	diffs := s.CompareLists(
		[]int64{4, 5},
		map[string][]int64{"notFull": {2}, "notEmpty": nil},
		[]int64{1},
		3,
		true,
	)
	if len(diffs) != 0 {
		t.Fatalf("CompareLists on agreeing state = %v, want none", diffs)
	}
}

func TestCompareListsDisagreements(t *testing.T) {
	t.Parallel()
	s := sample()
	cases := []struct {
		name      string
		eq        []int64
		cq        map[string][]int64
		running   []int64
		resources int
		field     string
	}{
		{"eq order", []int64{5, 4}, map[string][]int64{"notFull": {2}}, []int64{1}, 3, "EQ"},
		{"eq missing", []int64{4}, map[string][]int64{"notFull": {2}}, []int64{1}, 3, "EQ"},
		{"cq wrong", []int64{4, 5}, map[string][]int64{"notFull": {9}}, []int64{1}, 3, "CQ[notFull]"},
		{"cq extra cond", []int64{4, 5}, map[string][]int64{"notFull": {2}, "ghost": {3}}, []int64{1}, 3, "CQ[ghost]"},
		{"running", []int64{4, 5}, map[string][]int64{"notFull": {2}}, []int64{2}, 3, "Running"},
		{"resources", []int64{4, 5}, map[string][]int64{"notFull": {2}}, []int64{1}, 7, "Resources"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			diffs := s.CompareLists(tc.eq, tc.cq, tc.running, tc.resources, true)
			found := false
			for _, d := range diffs {
				if d.Field == tc.field {
					found = true
				}
			}
			if !found {
				t.Fatalf("CompareLists = %v, want a diff on %s", diffs, tc.field)
			}
		})
	}
}

func TestCompareListsRunningIsASet(t *testing.T) {
	t.Parallel()
	s := sample()
	s.Running = []RunningEntry{{Pid: 1}, {Pid: 2}}
	diffs := s.CompareLists([]int64{4, 5}, map[string][]int64{"notFull": {2}}, []int64{2, 1}, 3, true)
	for _, d := range diffs {
		if d.Field == "Running" {
			t.Fatalf("Running compared with order sensitivity: %v", diffs)
		}
	}
}

func TestCompareListsResourcesIgnoredWhenNotWanted(t *testing.T) {
	t.Parallel()
	s := sample()
	diffs := s.CompareLists([]int64{4, 5}, map[string][]int64{"notFull": {2}}, []int64{1}, 99, false)
	if len(diffs) != 0 {
		t.Fatalf("CompareLists with wantResources=false = %v, want none", diffs)
	}
}
