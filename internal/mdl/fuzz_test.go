package mdl

import "testing"

// FuzzParse checks the declaration parser never panics, and that every
// accepted declaration survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		bufferDecl,
		allocDecl,
		"m: Monitor (manager); cond ok; end m.",
		"m: Monitor (manager); end",
		"m: Monitor(widget); end m.",
		"m: Monitor (allocator); path a ; b end; acquire a; release b; end m.",
		"# only a comment",
		":;,(){}",
		"m: Monitor (coordinator); rmax 999999999; send S; receive R; cond c; end m.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		specs, err := Parse(src)
		if err != nil {
			return
		}
		for _, spec := range specs {
			again, err := Parse(Format(spec))
			if err != nil {
				t.Fatalf("Format output does not reparse: %v\n%s", err, Format(spec))
			}
			if len(again) != 1 || again[0].Name != spec.Name || again[0].Kind != spec.Kind {
				t.Fatalf("round trip changed the declaration: %+v vs %+v", spec, again)
			}
		}
	})
}
