// Package mdl parses the textual monitor declaration language — the
// "general form of the monitor specification" of §4:
//
//	MonitorName: Monitor (type);
//	    Declarations of local variables;
//	    Declarations of condition variables;
//	    Specification of procedure call orders;
//	    Declarations of monitor procedures;
//	    ...
//	End MonitorName.
//
// concretely rendered here as
//
//	buffer: Monitor (communication-coordinator);
//	    cond notFull, notEmpty;
//	    proc Send, Receive;
//	    rmax 4;
//	    send Send;
//	    receive Receive;
//	end buffer.
//
//	disk: Monitor (resource-access-right-allocator);
//	    cond free;
//	    proc Acquire, Release;
//	    path Acquire ; Release end;
//	    acquire Acquire;
//	    release Release;
//	end disk.
//
// A file may declare several monitors. Parse returns monitor.Spec
// values ready for monitor.New or offline checking, so tools
// (cmd/montrace -spec) can work with declarations instead of
// hard-coded specs.
package mdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"robustmon/internal/monitor"
)

// ParseError reports a declaration syntax error with its line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("mdl: line %d: %s", e.Line, e.Msg)
}

// kindNames maps accepted class names (long form per the paper, plus
// the short aliases the tools use) to monitor kinds.
var kindNames = map[string]monitor.Kind{
	"communication-coordinator":       monitor.CommunicationCoordinator,
	"coordinator":                     monitor.CommunicationCoordinator,
	"resource-access-right-allocator": monitor.ResourceAllocator,
	"allocator":                       monitor.ResourceAllocator,
	"resource-operation-manager":      monitor.OperationManager,
	"manager":                         monitor.OperationManager,
}

// Parse parses one or more monitor declarations and validates each
// resulting spec.
func Parse(src string) ([]monitor.Spec, error) {
	toks, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var specs []monitor.Spec
	for !p.atEOF() {
		spec, err := p.parseMonitor()
		if err != nil {
			return nil, err
		}
		if _, err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("mdl: declaration %q: %w", spec.Name, err)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, &ParseError{Line: 1, Msg: "no monitor declaration found"}
	}
	return specs, nil
}

// token kinds: identifiers/numbers carry text; punctuation carries the
// rune itself.
type mtoken struct {
	text string
	line int
	eof  bool
}

func scan(src string) ([]mtoken, error) {
	var toks []mtoken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune(":;,().{}[]", rune(c)):
			toks = append(toks, mtoken{text: string(c), line: line})
			i++
		case isWordRune(rune(c)):
			start := i
			for i < len(src) && isWordRune(rune(src[i])) {
				i++
			}
			toks = append(toks, mtoken{text: src[start:i], line: line})
		default:
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("illegal character %q", rune(c))}
		}
	}
	toks = append(toks, mtoken{eof: true, line: line})
	return toks, nil
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

type parser struct {
	toks []mtoken
	pos  int
}

func (p *parser) peek() mtoken { return p.toks[p.pos] }

func (p *parser) next() mtoken {
	t := p.toks[p.pos]
	if !t.eof {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().eof }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.peek().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.eof || !strings.EqualFold(t.text, text) {
		return &ParseError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %q", text, t.text)}
	}
	return nil
}

func (p *parser) ident(what string) (string, error) {
	t := p.next()
	if t.eof || !isWordStart(t.text) {
		return "", &ParseError{Line: t.line, Msg: fmt.Sprintf("expected %s, found %q", what, t.text)}
	}
	return t.text, nil
}

func isWordStart(s string) bool {
	if s == "" {
		return false
	}
	r := rune(s[0])
	return unicode.IsLetter(r) || r == '_'
}

// parseMonitor = ident ":" "Monitor" "(" kind ")" ";" { clause }
// "end" [ident] ["."] .
func (p *parser) parseMonitor() (monitor.Spec, error) {
	var spec monitor.Spec
	name, err := p.ident("monitor name")
	if err != nil {
		return spec, err
	}
	spec.Name = name
	if err := p.expect(":"); err != nil {
		return spec, err
	}
	if err := p.expect("Monitor"); err != nil {
		return spec, err
	}
	if err := p.expect("("); err != nil {
		return spec, err
	}
	kindTok, err := p.ident("monitor class")
	if err != nil {
		return spec, err
	}
	kind, ok := kindNames[strings.ToLower(kindTok)]
	if !ok {
		return spec, p.errf("unknown monitor class %q", kindTok)
	}
	spec.Kind = kind
	if err := p.expect(")"); err != nil {
		return spec, err
	}
	if err := p.expect(";"); err != nil {
		return spec, err
	}

	for {
		t := p.peek()
		if t.eof {
			return spec, p.errf("unexpected end of input inside %q", spec.Name)
		}
		if strings.EqualFold(t.text, "end") {
			p.next()
			// Optional trailing name and period.
			if nt := p.peek(); !nt.eof && strings.EqualFold(nt.text, spec.Name) {
				p.next()
			}
			if nt := p.peek(); !nt.eof && nt.text == "." {
				p.next()
			}
			return spec, nil
		}
		if err := p.parseClause(&spec); err != nil {
			return spec, err
		}
	}
}

func (p *parser) parseClause(spec *monitor.Spec) error {
	key, err := p.ident("clause keyword")
	if err != nil {
		return err
	}
	switch strings.ToLower(key) {
	case "cond":
		names, err := p.identList()
		if err != nil {
			return err
		}
		spec.Conditions = append(spec.Conditions, names...)
	case "proc":
		names, err := p.identList()
		if err != nil {
			return err
		}
		spec.Procedures = append(spec.Procedures, names...)
	case "path":
		expr, err := p.pathText()
		if err != nil {
			return err
		}
		spec.CallOrder = expr
	case "rmax":
		t := p.next()
		n, convErr := strconv.Atoi(t.text)
		if t.eof || convErr != nil {
			return &ParseError{Line: t.line, Msg: fmt.Sprintf("rmax expects an integer, found %q", t.text)}
		}
		spec.Rmax = n
	case "send":
		name, err := p.ident("procedure name")
		if err != nil {
			return err
		}
		spec.SendProc = name
	case "receive":
		name, err := p.ident("procedure name")
		if err != nil {
			return err
		}
		spec.ReceiveProc = name
	case "acquire":
		name, err := p.ident("procedure name")
		if err != nil {
			return err
		}
		spec.AcquireProc = name
	case "release":
		name, err := p.ident("procedure name")
		if err != nil {
			return err
		}
		spec.ReleaseProc = name
	default:
		return p.errf("unknown clause %q (want cond, proc, path, rmax, send, receive, acquire or release)", key)
	}
	return p.expect(";")
}

// identList = ident { "," ident } .
func (p *parser) identList() ([]string, error) {
	first, err := p.ident("identifier")
	if err != nil {
		return nil, err
	}
	out := []string{first}
	for p.peek().text == "," {
		p.next()
		next, err := p.ident("identifier")
		if err != nil {
			return nil, err
		}
		out = append(out, next)
	}
	return out, nil
}

// pathText collects the raw path expression up to its closing "end"
// keyword (path expressions contain ';' internally, so the clause
// terminator only applies after that "end").
func (p *parser) pathText() (string, error) {
	var parts []string
	for {
		t := p.next()
		if t.eof {
			return "", &ParseError{Line: t.line, Msg: `unterminated path clause (missing "end")`}
		}
		if strings.EqualFold(t.text, "end") {
			break
		}
		parts = append(parts, t.text)
	}
	return "path " + strings.Join(parts, " ") + " end", nil
}

// Format renders a spec back into declaration syntax (the inverse of
// Parse, modulo whitespace). Useful for tooling round-trips.
func Format(spec monitor.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: Monitor (%s);\n", spec.Name, spec.Kind)
	if len(spec.Conditions) > 0 {
		fmt.Fprintf(&b, "    cond %s;\n", strings.Join(spec.Conditions, ", "))
	}
	if len(spec.Procedures) > 0 {
		fmt.Fprintf(&b, "    proc %s;\n", strings.Join(spec.Procedures, ", "))
	}
	if spec.CallOrder != "" {
		order := strings.TrimSpace(spec.CallOrder)
		order = strings.TrimPrefix(order, "path ")
		order = strings.TrimSuffix(order, " end")
		fmt.Fprintf(&b, "    path %s end;\n", order)
	}
	if spec.Rmax > 0 {
		fmt.Fprintf(&b, "    rmax %d;\n", spec.Rmax)
	}
	if spec.SendProc != "" {
		fmt.Fprintf(&b, "    send %s;\n", spec.SendProc)
	}
	if spec.ReceiveProc != "" {
		fmt.Fprintf(&b, "    receive %s;\n", spec.ReceiveProc)
	}
	if spec.AcquireProc != "" {
		fmt.Fprintf(&b, "    acquire %s;\n", spec.AcquireProc)
	}
	if spec.ReleaseProc != "" {
		fmt.Fprintf(&b, "    release %s;\n", spec.ReleaseProc)
	}
	fmt.Fprintf(&b, "end %s.\n", spec.Name)
	return b.String()
}
