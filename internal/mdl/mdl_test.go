package mdl

import (
	"errors"
	"strings"
	"testing"

	"robustmon/internal/monitor"
)

const bufferDecl = `
# the paper's bounded-buffer coordinator
buffer: Monitor (communication-coordinator);
    cond notFull, notEmpty;
    proc Send, Receive;
    rmax 4;
    send Send;
    receive Receive;
end buffer.
`

const allocDecl = `
disk: Monitor (resource-access-right-allocator);
    cond free;
    proc Acquire, Release;
    path Acquire ; Release end;
    acquire Acquire;
    release Release;
end disk.
`

func TestParseCoordinator(t *testing.T) {
	t.Parallel()
	specs, err := Parse(bufferDecl)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(specs) != 1 {
		t.Fatalf("got %d specs", len(specs))
	}
	s := specs[0]
	if s.Name != "buffer" || s.Kind != monitor.CommunicationCoordinator {
		t.Fatalf("spec = %+v", s)
	}
	if len(s.Conditions) != 2 || s.Conditions[0] != "notFull" {
		t.Fatalf("conditions = %v", s.Conditions)
	}
	if s.Rmax != 4 || s.SendProc != "Send" || s.ReceiveProc != "Receive" {
		t.Fatalf("coordinator fields = %+v", s)
	}
}

func TestParseAllocatorWithPath(t *testing.T) {
	t.Parallel()
	specs, err := Parse(allocDecl)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := specs[0]
	if s.Kind != monitor.ResourceAllocator {
		t.Fatalf("kind = %v", s.Kind)
	}
	if s.CallOrder != "path Acquire ; Release end" {
		t.Fatalf("call order = %q", s.CallOrder)
	}
	if s.AcquireProc != "Acquire" || s.ReleaseProc != "Release" {
		t.Fatalf("allocator procs = %+v", s)
	}
	// The produced spec must build a working monitor.
	if _, err := monitor.New(s); err != nil {
		t.Fatalf("monitor.New on parsed spec: %v", err)
	}
}

func TestParseMultipleDeclarations(t *testing.T) {
	t.Parallel()
	specs, err := Parse(bufferDecl + "\n" + allocDecl)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(specs) != 2 || specs[0].Name != "buffer" || specs[1].Name != "disk" {
		t.Fatalf("specs = %+v", specs)
	}
}

func TestParseShortKindAliases(t *testing.T) {
	t.Parallel()
	specs, err := Parse(`kv: Monitor (manager); cond ok; end kv.`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if specs[0].Kind != monitor.OperationManager {
		t.Fatalf("kind = %v", specs[0].Kind)
	}
}

func TestParseComplexPathClause(t *testing.T) {
	t.Parallel()
	specs, err := Parse(`
rw: Monitor (allocator);
    cond okToRead, okToWrite;
    proc StartRead, EndRead, StartWrite, EndWrite;
    path (StartRead ; EndRead) , (StartWrite ; EndWrite) end;
end rw.
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := "path ( StartRead ; EndRead ) , ( StartWrite ; EndWrite ) end"
	if specs[0].CallOrder != want {
		t.Fatalf("call order = %q, want %q", specs[0].CallOrder, want)
	}
	if _, err := specs[0].Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, src, wantMsg string
	}{
		{"empty", "", "no monitor declaration"},
		{"missing colon", "m Monitor (manager); end m.", `expected ":"`},
		{"unknown class", "m: Monitor (widget); end m.", "unknown monitor class"},
		{"unknown clause", "m: Monitor (manager); pth a end; end m.", "unknown clause"},
		{"bad rmax", "m: Monitor (coordinator); rmax lots; end m.", "expects an integer"},
		{"unterminated path", "m: Monitor (allocator); path a ; b", "unterminated path"},
		{"unterminated monitor", "m: Monitor (manager); cond ok;", "unexpected end of input"},
		{"illegal char", "m: Monitor (manager); cond @; end m.", "illegal character"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error = %v, want containing %q", err, tc.wantMsg)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	t.Parallel()
	_, err := Parse("m: Monitor (manager);\ncond ok;\nbogus x;\nend m.")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ParseError", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
}

func TestParseRejectsInvalidSpecs(t *testing.T) {
	t.Parallel()
	// A coordinator without rmax is syntactically fine but semantically
	// invalid; Parse must surface the spec validation error.
	_, err := Parse(`b: Monitor (coordinator); cond c; send S; receive R; end b.`)
	if err == nil || !strings.Contains(err.Error(), "Rmax") {
		t.Fatalf("error = %v, want Rmax validation failure", err)
	}
}

func TestFormatRoundTrips(t *testing.T) {
	t.Parallel()
	for _, src := range []string{bufferDecl, allocDecl} {
		specs, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		rendered := Format(specs[0])
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", rendered, err)
		}
		if again[0].Name != specs[0].Name || again[0].Kind != specs[0].Kind ||
			again[0].CallOrder != specs[0].CallOrder || again[0].Rmax != specs[0].Rmax {
			t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", specs[0], again[0])
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	t.Parallel()
	specs, err := Parse("# header\nm: Monitor (manager); # inline\ncond ok;\nend m.")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if specs[0].Name != "m" {
		t.Fatal("comment handling broke parsing")
	}
}
