// Package assert implements the paper's first future-work extension
// (§5): "predefined and user-supplied assertions to be specified as
// part of monitor declarations and used for checking the functional
// operations and external use of the monitors."
//
// An assertion is a named predicate over the application's shared
// state. A Set groups the assertions of one monitor; it plugs into the
// periodic detector (detect.Config.Extra) so assertions are evaluated
// at every checkpoint while the world is frozen, and can also be
// checked explicitly at procedure boundaries.
package assert

import (
	"fmt"
	"sync"
	"time"

	"robustmon/internal/rules"
)

// Assertion is one named invariant.
type Assertion struct {
	// Name identifies the assertion in violation reports.
	Name string
	// Check returns nil while the invariant holds; the returned error
	// becomes the violation message.
	Check func() error
}

// Set holds the assertions declared for one monitor. The zero value is
// unusable; construct with NewSet. Safe for concurrent use.
type Set struct {
	monitorName string

	mu         sync.Mutex
	assertions []Assertion
}

// NewSet returns an empty assertion set for the named monitor.
func NewSet(monitorName string) *Set {
	return &Set{monitorName: monitorName}
}

// Add declares an assertion. Declaration order is evaluation order.
func (s *Set) Add(name string, check func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.assertions = append(s.assertions, Assertion{Name: name, Check: check})
}

// Len returns the number of declared assertions.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.assertions)
}

// Check evaluates every assertion at instant now and returns one
// violation per failing assertion. It implements the detector's Extra
// checker interface.
func (s *Set) Check(now time.Time) []rules.Violation {
	s.mu.Lock()
	asserts := append([]Assertion(nil), s.assertions...)
	s.mu.Unlock()
	var out []rules.Violation
	for _, a := range asserts {
		if err := a.Check(); err != nil {
			out = append(out, rules.Violation{
				Rule:    rules.Assert,
				Monitor: s.monitorName,
				At:      now,
				Message: fmt.Sprintf("assertion %q failed: %v", a.Name, err),
			})
		}
	}
	return out
}
