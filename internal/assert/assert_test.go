package assert

import (
	"errors"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func TestEmptySetIsSilent(t *testing.T) {
	t.Parallel()
	s := NewSet("m")
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if vs := s.Check(epoch); len(vs) != 0 {
		t.Fatalf("empty set produced %v", vs)
	}
}

func TestFailingAssertionsReport(t *testing.T) {
	t.Parallel()
	s := NewSet("buf")
	s.Add("holds", func() error { return nil })
	s.Add("broken", func() error { return errors.New("count went negative") })
	s.Add("also-broken", func() error { return errors.New("sum mismatch") })
	vs := s.Check(epoch)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Rule != rules.Assert || v.Monitor != "buf" {
			t.Fatalf("violation = %+v", v)
		}
	}
	if vs[0].Message == vs[1].Message {
		t.Fatal("violations should carry the individual assertion names")
	}
}

func TestSetPlugsIntoDetector(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	spec := monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
	}
	m, err := monitor.New(spec, monitor.WithRecorder(db), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	invariantHolds := true
	s := NewSet("m")
	s.Add("app-invariant", func() error {
		if invariantHolds {
			return nil
		}
		return errors.New("invariant broken")
	})
	det := detect.New(db, detect.Config{
		Clock: clk, HoldWorld: true, Extra: []detect.Checker{s},
	}, m)

	r := proc.NewRuntime()
	r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	r.Join()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("holding invariant flagged: %v", vs)
	}
	invariantHolds = false
	vs := det.CheckNow()
	if !rules.HasRule(vs, rules.Assert) {
		t.Fatalf("violations = %v, want ASSERT", vs)
	}
	if vs[0].Phase != "periodic" {
		t.Fatalf("phase = %q, want periodic", vs[0].Phase)
	}
}
