package verify

import (
	"math/rand"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func managerSpec() monitor.Spec {
	return monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"}, Procedures: []string{"Op"},
	}
}

// record runs a workload against an instrumented monitor and returns
// the recorded trace.
func record(t *testing.T, spec monitor.Spec, hooks monitor.Hooks, load func(*monitor.Monitor, *proc.Runtime)) event.Seq {
	t.Helper()
	db := history.New(history.WithFullTrace())
	m, err := monitor.New(spec,
		monitor.WithRecorder(db),
		monitor.WithClock(clock.NewVirtual(epoch)),
		monitor.WithHooks(hooks),
	)
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	load(m, r)
	r.AbortAll()
	r.Join()
	return db.Full()
}

func TestCleanTraceBothCheckersSilent(t *testing.T) {
	t.Parallel()
	trace := record(t, managerSpec(), monitor.Hooks{}, func(m *monitor.Monitor, r *proc.Runtime) {
		for i := 0; i < 5; i++ {
			r.Spawn("w", func(p *proc.P) {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			})
		}
		r.Join()
	})
	results, err := Trace(trace, Options{Specs: []monitor.Spec{managerSpec()}})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if len(results) != 1 || !results[0].Clean() {
		t.Fatalf("results = %+v, want clean", results)
	}
	if !Agreement(results) {
		t.Fatal("checkers disagree on a clean trace")
	}
}

func TestFaultyTraceBothCheckersFlag(t *testing.T) {
	t.Parallel()
	hooks := monitor.Hooks{SignalExit: func(int64, string, string) monitor.SignalAction {
		return monitor.SignalKeepLock
	}}
	trace := record(t, managerSpec(), hooks, func(m *monitor.Monitor, r *proc.Runtime) {
		r.Spawn("p", func(p *proc.P) {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			_ = m.Exit(p, "Op")
		})
		r.Join()
		// A second process enters after the stale exit: with the lock
		// kept, it queues forever; the trace shows Enter(0) with no
		// running process explaining it.
		r.Spawn("q", func(p *proc.P) { _ = m.Enter(p, "Op") })
		deadline := time.Now().Add(5 * time.Second)
		for m.EntryLen() != 1 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	})
	results, err := Trace(trace, Options{
		Specs: []monitor.Spec{managerSpec()},
		Tio:   time.Second,
		End:   epoch.Add(time.Minute),
	})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	r := results[0]
	if len(r.FD) == 0 {
		t.Fatal("FD checker missed the faulty trace")
	}
	if len(r.ST) == 0 {
		t.Fatal("ST checker missed the faulty trace")
	}
	if !Agreement(results) {
		t.Fatal("checkers disagree")
	}
	for _, v := range append(append([]rules.Violation(nil), r.FD...), r.ST...) {
		if v.Phase != "offline" {
			t.Fatalf("violation phase = %q, want offline", v.Phase)
		}
	}
}

func TestTraceRejectsUndeclaredMonitor(t *testing.T) {
	t.Parallel()
	trace := event.Seq{{
		Seq: 1, Monitor: "ghost", Type: event.Enter, Pid: 1, Proc: "P",
		Flag: event.Completed, Time: epoch,
	}}
	if _, err := Trace(trace, Options{Specs: []monitor.Spec{managerSpec()}}); err == nil {
		t.Fatal("undeclared monitor accepted")
	}
}

func TestTraceRejectsDuplicateSpecs(t *testing.T) {
	t.Parallel()
	if _, err := Trace(nil, Options{Specs: []monitor.Spec{managerSpec(), managerSpec()}}); err == nil {
		t.Fatal("duplicate specs accepted")
	}
}

func TestTraceRejectsCorruptSeq(t *testing.T) {
	t.Parallel()
	trace := event.Seq{
		{Seq: 2, Monitor: "m", Type: event.Enter, Pid: 1, Proc: "P", Flag: 1, Time: epoch},
		{Seq: 1, Monitor: "m", Type: event.Enter, Pid: 2, Proc: "P", Flag: 1, Time: epoch},
	}
	if _, err := Trace(trace, Options{Specs: []monitor.Spec{managerSpec()}}); err == nil {
		t.Fatal("non-monotonic trace accepted")
	}
}

// TestQuickAgreementOnRandomCleanWorkloads cross-validates the two
// checkers on randomly generated fault-free workloads: both must stay
// silent, which is the equivalence claim of §3.3.2 restricted to the
// clean side.
func TestQuickAgreementOnRandomCleanWorkloads(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 7, 42, 1234, 99999}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			nProcs := 2 + rng.Intn(4)
			nOps := 5 + rng.Intn(20)
			rounds := 3 + rng.Intn(8)
			trace := record(t, managerSpec(), monitor.Hooks{}, func(m *monitor.Monitor, r *proc.Runtime) {
				for i := 0; i < nProcs; i++ {
					r.Spawn("w", func(p *proc.P) {
						for j := 0; j < nOps; j++ {
							if err := m.Enter(p, "Op"); err != nil {
								return
							}
							_ = m.Exit(p, "Op")
						}
					})
				}
				// A counted wait/signal pair so the trace also contains
				// condition-queue traffic. The waiter only waits when no
				// signal credit is pending; both checks run inside the
				// monitor, so there are no lost wake-ups.
				credits := 0
				r.Spawn("waiter", func(p *proc.P) {
					for j := 0; j < rounds; j++ {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						if credits == 0 {
							if err := m.Wait(p, "Op", "ok"); err != nil {
								return
							}
						}
						credits--
						_ = m.Exit(p, "Op")
					}
				})
				r.Spawn("signaler", func(p *proc.P) {
					for j := 0; j < rounds; j++ {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						credits++
						_ = m.SignalExit(p, "Op", "ok")
					}
				})
				r.Join()
			})
			results, err := Trace(trace, Options{
				Specs: []monitor.Spec{managerSpec()},
				Tmax:  time.Hour, Tio: time.Hour,
				End: epoch.Add(time.Second),
			})
			if err != nil {
				t.Fatalf("Trace: %v", err)
			}
			if !results[0].Clean() {
				t.Fatalf("random clean workload flagged: FD=%v ST=%v Literal=%v",
					results[0].FD, results[0].ST, results[0].Literal)
			}
		})
	}
}
