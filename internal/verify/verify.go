// Package verify is the offline trace checker: it replays a recorded
// history through BOTH independent rule implementations — the
// full-trace FD-Rule checker (internal/rules) and the checking-list
// replay of the periodic algorithms (internal/checklists) — and reports
// their findings side by side. The paper argues the FD-Rules and the
// ST-Rules are equivalent (§3.3.2); Agreement makes that claim
// executable, and the cmd/montrace tool exposes it to users who want to
// re-check an exported trace.
package verify

import (
	"fmt"
	"time"

	"robustmon/internal/checklists"
	"robustmon/internal/event"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

// Options parameterises an offline check.
type Options struct {
	// Specs declares the monitors appearing in the trace. Events of
	// undeclared monitors are an error.
	Specs []monitor.Spec
	// Tmax, Tio, Tlimit are the timer parameters (zero disables each).
	Tmax, Tio, Tlimit time.Duration
	// End is the instant the trace was cut; defaults to the timestamp of
	// the last event when zero.
	End time.Time
	// Final optionally supplies the actual final snapshot per monitor
	// for reconstruction-vs-reality comparison.
	Final map[string]state.Snapshot
}

// Result holds the checkers' findings for one monitor.
type Result struct {
	// Monitor names the monitor.
	Monitor string
	// FD are the violations from the FD-Rule full-trace checker.
	FD []rules.Violation
	// ST are the violations from the checking-list replay (one segment
	// spanning the whole trace, i.e. the T→∞ configuration).
	ST []rules.Violation
	// Literal are the violations from the literal-form FD-Rule
	// quantifiers over the reconstructed §3.1 event model. These rules
	// are necessary conditions only (weaker than FD/ST), so Literal may
	// be empty on a trace the other two flag; a literal finding on a
	// trace the others pass would indicate a checker bug.
	Literal []rules.Violation
}

// Clean reports whether no checker found a violation.
func (r Result) Clean() bool {
	return len(r.FD) == 0 && len(r.ST) == 0 && len(r.Literal) == 0
}

// Trace checks a recorded trace offline and returns one Result per
// declared monitor (in Specs order).
func Trace(trace event.Seq, opts Options) ([]Result, error) {
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	declared := make(map[string]monitor.Spec, len(opts.Specs))
	for _, s := range opts.Specs {
		if _, dup := declared[s.Name]; dup {
			return nil, fmt.Errorf("verify: duplicate spec %q", s.Name)
		}
		declared[s.Name] = s
	}
	for _, e := range trace {
		if _, ok := declared[e.Monitor]; !ok {
			return nil, fmt.Errorf("verify: event %d on undeclared monitor %q", e.Seq, e.Monitor)
		}
	}
	end := opts.End
	if end.IsZero() && len(trace) > 0 {
		end = trace[len(trace)-1].Time
	}

	out := make([]Result, 0, len(opts.Specs))
	for _, spec := range opts.Specs {
		seg := trace.ByMonitor(spec.Name)
		res := Result{Monitor: spec.Name}

		// Checker 1: FD-Rules over the full trace.
		cfg := rules.Config{
			Spec: spec, Tmax: opts.Tmax, Tio: opts.Tio, Tlimit: opts.Tlimit, End: end,
		}
		if snap, ok := opts.Final[spec.Name]; ok {
			snapCopy := snap.Clone()
			cfg.Final = &snapCopy
		}
		res.FD = markPhase(rules.Check(seg, cfg))

		// Checker 2: the periodic algorithms run as one giant segment.
		lists := checklists.FromSnapshot(spec, emptySnapshot(spec), 0, 0)
		rl := checklists.NewRequestList(spec)
		var st []rules.Violation
		for _, e := range seg {
			lists.Apply(e)
			if spec.Kind == monitor.ResourceAllocator {
				st = append(st, rl.Apply(e)...)
			}
		}
		st = append(st, lists.Violations()...)
		if snap, ok := opts.Final[spec.Name]; ok {
			st = append(st, lists.CompareWith(snap)...)
		}
		if !end.IsZero() {
			st = append(st, lists.CheckTimers(end, opts.Tmax, opts.Tio)...)
			if spec.Kind == monitor.ResourceAllocator {
				st = append(st, rl.CheckTimers(end, opts.Tlimit)...)
			}
		}
		res.ST = markPhase(st)

		// Checker 3: the literal §3.2 quantifiers over the reconstructed
		// §3.1 event model.
		res.Literal = markPhase(rules.CheckLiteral(seg, spec.Name))
		out = append(out, res)
	}
	return out, nil
}

// Agreement reports whether the two checkers agree monitor by monitor
// on the question "is this trace faulty?". The paper's equivalence
// claim predicts they always do.
func Agreement(results []Result) bool {
	for _, r := range results {
		if (len(r.FD) == 0) != (len(r.ST) == 0) {
			return false
		}
	}
	return true
}

func markPhase(vs []rules.Violation) []rules.Violation {
	for i := range vs {
		vs[i].Phase = "offline"
	}
	return vs
}

func emptySnapshot(spec monitor.Spec) state.Snapshot {
	cq := make(map[string][]state.QueueEntry, len(spec.Conditions))
	for _, c := range spec.Conditions {
		cq[c] = nil
	}
	return state.Snapshot{Monitor: spec.Name, CQ: cq, Resources: spec.Rmax}
}
