package detect_test

import (
	"context"
	"testing"
	"time"

	"robustmon/internal/detect"
	"robustmon/internal/export"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// TestDetectorFeedsExporter wires an exporter through Config.Exporter
// and checks the integration contract: New installs the drain tee, the
// checkpoints stream every drained segment out, and Run's shutdown
// flush leaves the sink holding the complete run — all without
// WithFullTrace. (External test package: detect itself must not depend
// on export; the SegmentExporter seam is the point.)
func TestDetectorFeedsExporter(t *testing.T) {
	t.Parallel()
	for _, hold := range []bool{true, false} {
		hold := hold
		name := "per-monitor"
		if hold {
			name = "hold-world"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sink := &export.MemorySink{}
			exp := export.New(sink, export.Config{Policy: export.Block})
			db := history.New() // deliberately no WithFullTrace
			mons := make([]*monitor.Monitor, 3)
			for i := range mons {
				spec := monitor.Spec{
					Name:       "m" + string(rune('0'+i)),
					Kind:       monitor.OperationManager,
					Conditions: []string{"ok"},
					Procedures: []string{"Op"},
				}
				m, err := monitor.New(spec, monitor.WithRecorder(db))
				if err != nil {
					t.Fatal(err)
				}
				mons[i] = m
			}
			det := detect.New(db, detect.Config{
				Interval:  time.Millisecond,
				Tmax:      time.Hour,
				Tio:       time.Hour,
				HoldWorld: hold,
				Exporter:  exp,
			}, mons...)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				if vs := det.Run(ctx); len(vs) != 0 {
					t.Errorf("fault-free run reported violations: %v", vs)
				}
			}()
			rt := proc.NewRuntime()
			for _, m := range mons {
				m := m
				rt.Spawn("w", func(p *proc.P) {
					for j := 0; j < 300; j++ {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						_ = m.Exit(p, "Op")
					}
				})
			}
			rt.Join()
			cancel()
			<-done // Run has flushed the exporter on its way out

			events := sink.Events()
			if got, want := int64(len(events)), db.Total(); got != want {
				t.Fatalf("exporter saw %d events, database recorded %d", got, want)
			}
			if err := events.Validate(); err != nil {
				t.Fatalf("exported trace invalid: %v", err)
			}
			if db.Full() != nil {
				t.Fatal("db.Full() non-nil without WithFullTrace — exporter should be the only copy")
			}
		})
	}
}
