package sched

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func newTestSched() *Scheduler {
	return New(Config{
		Tmin:        10 * time.Millisecond,
		Tmax:        time.Second,
		TargetBatch: 100,
		Alpha:       1, // track the latest sample exactly: deterministic maths
	})
}

func TestIntervalTracksRate(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("m", epoch)

	// 1000 events over 1s → rate 1000/s → interval = 100/1000 = 100ms.
	now := epoch.Add(time.Second)
	s.Observe("m", 1000, now)
	if got, want := s.Interval("m"), 100*time.Millisecond; got != want {
		t.Fatalf("hot interval = %v, want %v", got, want)
	}

	// Another second with no events: rate sample 0 → idle → Tmax.
	now = now.Add(time.Second)
	s.Observe("m", 1000, now)
	if got, want := s.Interval("m"), time.Second; got != want {
		t.Fatalf("idle interval = %v, want Tmax %v", got, want)
	}
}

func TestIntervalClamping(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("hot", epoch)
	s.Add("cold", epoch)
	now := epoch.Add(time.Second)

	// 10M events/s → raw interval 10µs → clamped up to Tmin.
	s.Observe("hot", 10_000_000, now)
	if got, want := s.Interval("hot"), 10*time.Millisecond; got != want {
		t.Fatalf("hot interval = %v, want Tmin %v", got, want)
	}
	// 1 event/s → raw interval 100s → clamped down to Tmax.
	s.Observe("cold", 1, now)
	if got, want := s.Interval("cold"), time.Second; got != want {
		t.Fatalf("cold interval = %v, want Tmax %v", got, want)
	}
}

// TestIntervalTinyRateNoOverflow pins the float-domain Tmax clamp: an
// EWMA decaying toward zero passes through rates so small that the
// raw nanosecond count overflows time.Duration, and the overflow must
// not read as "shorter than Tmin".
func TestIntervalTinyRateNoOverflow(t *testing.T) {
	t.Parallel()
	s := New(Config{Tmin: time.Millisecond, Tmax: time.Second, TargetBatch: 512, Alpha: 0.5})
	s.Add("m", epoch)
	now := epoch.Add(time.Second)
	// One hot tick, then idle ticks decay the EWMA through the
	// overflow-prone range (~1e-8 events/s) without ever reaching 0.
	s.Observe("m", 1000, now)
	count := int64(1000)
	for i := 0; i < 200; i++ {
		now = now.Add(time.Second)
		s.Observe("m", count, now)
		if got := s.Interval("m"); got < time.Millisecond || got > time.Second {
			t.Fatalf("tick %d: interval %v escaped [Tmin, Tmax] (rate %v)", i, got, s.Rate("m"))
		}
	}
	if got := s.Interval("m"); got != time.Second {
		t.Fatalf("decayed-idle interval = %v, want Tmax", got)
	}
}

func TestDueAndMarkChecked(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("b", epoch)
	s.Add("a", epoch)

	if due := s.Due(epoch); len(due) != 0 {
		t.Fatalf("due immediately after Add: %v", due)
	}
	// Both start at Tmin; both due, in name order.
	now := epoch.Add(10 * time.Millisecond)
	if due := s.Due(now); len(due) != 2 || due[0] != "a" || due[1] != "b" {
		t.Fatalf("due = %v, want [a b]", due)
	}

	// Make a hot (100ms) and b idle (Tmax = 1s), then check both.
	s.Observe("a", 100, now)
	s.Observe("b", 0, now)
	s.MarkChecked("a", now)
	s.MarkChecked("b", now)

	at := now.Add(100 * time.Millisecond)
	if due := s.Due(at); len(due) != 1 || due[0] != "a" {
		t.Fatalf("after 100ms due = %v, want [a]", due)
	}
	at = now.Add(time.Second)
	if due := s.Due(at); len(due) != 2 {
		t.Fatalf("after Tmax due = %v, want both", due)
	}
}

func TestBurstPullsStaleDeadlineIn(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("m", epoch)
	// Go idle: interval backs off to Tmax and the next deadline lands
	// a full second out.
	now := epoch.Add(10 * time.Millisecond)
	s.Observe("m", 0, now)
	s.MarkChecked("m", now)
	if due := s.Due(now.Add(500 * time.Millisecond)); len(due) != 0 {
		t.Fatalf("idle monitor due early: %v", due)
	}
	// A burst 100ms later must not wait out the stale Tmax deadline:
	// the shrunken interval pulls the deadline in to lastChecked+Tmin.
	at := now.Add(100 * time.Millisecond)
	s.Observe("m", 100_000, at) // 1M events/s → interval clamps to Tmin
	if got, want := s.Interval("m"), 10*time.Millisecond; got != want {
		t.Fatalf("burst interval = %v, want Tmin %v", got, want)
	}
	if due := s.Due(at); len(due) != 1 || due[0] != "m" {
		t.Fatalf("burst monitor not due immediately: %v", due)
	}
	d, _ := s.NextWake(at)
	if d != 0 {
		t.Fatalf("NextWake after burst = %v, want 0", d)
	}
}

func TestNextWake(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	if _, ok := s.NextWake(epoch); ok {
		t.Fatal("NextWake with no monitors reported a wake")
	}
	s.Add("m", epoch)
	d, ok := s.NextWake(epoch)
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("NextWake = %v, %v; want Tmin, true", d, ok)
	}
	// Past due → zero, never negative.
	d, _ = s.NextWake(epoch.Add(time.Minute))
	if d != 0 {
		t.Fatalf("overdue NextWake = %v, want 0", d)
	}
}

func TestEWMASmoothing(t *testing.T) {
	t.Parallel()
	s := New(Config{Tmin: time.Millisecond, Tmax: time.Minute, TargetBatch: 100, Alpha: 0.5})
	s.Add("m", epoch)
	now := epoch
	// Constant 1000/s for a few ticks: EWMA converges toward 1000.
	count := int64(0)
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		count += 1000
		s.Observe("m", count, now)
	}
	if r := s.Rate("m"); r < 990 || r > 1000 {
		t.Fatalf("EWMA rate = %v, want ≈1000", r)
	}
	// One idle tick must not erase the history (alpha 0.5 → half).
	now = now.Add(time.Second)
	s.Observe("m", count, now)
	if r := s.Rate("m"); r < 450 || r > 510 {
		t.Fatalf("rate after one idle tick = %v, want ≈500", r)
	}
}

func TestObserveDefensiveCases(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("m", epoch)
	// Unknown monitor and non-advancing clock are no-ops, not panics.
	s.Observe("ghost", 5, epoch.Add(time.Second))
	s.MarkChecked("ghost", epoch)
	s.Observe("m", 100, epoch) // dt = 0
	if got := s.Rate("m"); got != 0 {
		t.Fatalf("rate after zero-dt observe = %v, want 0", got)
	}
	// A counter that goes backwards (database swapped) clamps to 0.
	s.Observe("m", 100, epoch.Add(time.Second))
	s.Observe("m", 50, epoch.Add(2*time.Second))
	if got := s.Interval("m"); got != time.Second {
		t.Fatalf("interval after counter reset = %v, want Tmax", got)
	}
	// Double Add keeps existing state.
	s.Add("m", epoch.Add(time.Hour))
	if _, ok := s.NextWake(epoch.Add(2 * time.Second)); !ok {
		t.Fatal("monitor lost after double Add")
	}
}

func TestIntervalsSnapshot(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	s.Add("a", epoch)
	s.Add("b", epoch)
	ivs := s.Intervals()
	if len(ivs) != 2 || ivs["a"] != 10*time.Millisecond {
		t.Fatalf("Intervals = %v", ivs)
	}
}

// TestSchedulerConcurrentAccess is the -race workout: Observe, Due,
// MarkChecked, NextWake and Intervals from many goroutines at once.
func TestSchedulerConcurrentAccess(t *testing.T) {
	t.Parallel()
	s := newTestSched()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		s.Add(n, epoch)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := names[i%len(names)]
			now := epoch
			for j := 0; j < 200; j++ {
				now = now.Add(time.Millisecond)
				s.Observe(name, int64(j*10), now)
				s.Due(now)
				s.MarkChecked(name, now)
				s.NextWake(now)
				s.Intervals()
			}
		}()
	}
	wg.Wait()
}
