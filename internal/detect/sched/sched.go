// Package sched is the adaptive checkpoint scheduler: it replaces the
// detector's single fixed checking interval T with a per-monitor
// effective interval driven by observed per-shard event rates.
//
// The paper's checking routine re-checks every monitor every T, which
// wastes checkpoints on idle monitors and lets hot monitors build huge
// segments between checks. The scheduler keeps, for each monitor, an
// exponentially weighted moving average of its event rate (sampled
// from the history database's per-shard cumulative counters) and aims
// each checkpoint at a target segment size: the effective interval is
//
//	interval = TargetBatch / rate, clamped to [Tmin, Tmax]
//
// so a hot shard is checked often enough that its segments stay near
// TargetBatch events, while an idle shard backs off toward Tmax and
// stops paying for empty checkpoints. Tmin bounds the checking
// frequency (and thus the instrumentation overhead) from above; Tmax
// bounds the detection latency from above — a fault on an idle monitor
// is still caught within Tmax, which is why Tmax must stay below any
// meaning the caller attaches to "detected promptly".
//
// The scheduler is pure bookkeeping over instants supplied by the
// caller: it never reads a clock, so the detector can drive it from
// its configured clock.Clock and tests can drive it from a virtual
// one. All methods are safe for concurrent use.
package sched

import (
	"sort"
	"sync"
	"time"
)

// DefaultTargetBatch is the per-checkpoint segment size the scheduler
// aims for when Config.TargetBatch is zero.
const DefaultTargetBatch = 1024

// defaultAlpha is the EWMA smoothing factor when Config.Alpha is zero:
// moderately reactive, but one quiet tick does not erase a hot
// monitor's history.
const defaultAlpha = 0.5

// Config parameterises a Scheduler.
type Config struct {
	// Tmin is the shortest effective checking interval — the floor a
	// hot monitor's interval is clamped to. Must be positive.
	Tmin time.Duration
	// Tmax is the longest effective checking interval — the ceiling an
	// idle monitor backs off to, and therefore the worst-case detection
	// latency for periodic-phase faults. Must be ≥ Tmin.
	Tmax time.Duration
	// TargetBatch is the per-checkpoint segment size (events) each
	// monitor's interval is tuned toward. Zero means
	// DefaultTargetBatch.
	TargetBatch int
	// Alpha is the EWMA smoothing factor in (0, 1]: 1 tracks only the
	// latest sample, small values average over a long history. Zero
	// means the default (0.5).
	Alpha float64
}

// withDefaults normalises cfg, resolving zero values.
func (cfg Config) withDefaults() Config {
	if cfg.TargetBatch <= 0 {
		cfg.TargetBatch = DefaultTargetBatch
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = defaultAlpha
	}
	if cfg.Tmin <= 0 {
		cfg.Tmin = time.Millisecond
	}
	if cfg.Tmax < cfg.Tmin {
		cfg.Tmax = cfg.Tmin
	}
	return cfg
}

// monSched is one monitor's scheduling state.
type monSched struct {
	// lastCount is the monitor's cumulative event counter at the last
	// Observe, and lastObs its instant; their deltas are the rate
	// samples.
	lastCount int64
	lastObs   time.Time
	// rate is the EWMA event rate in events/second.
	rate float64
	// interval is the current effective checking interval.
	interval time.Duration
	// lastChecked is the instant of the monitor's most recent
	// checkpoint (registration counts as one).
	lastChecked time.Time
	// next is the instant the monitor is next due for a checkpoint.
	next time.Time
}

// Scheduler assigns each registered monitor an adaptive checking
// interval. Construct with New.
type Scheduler struct {
	cfg Config

	mu   sync.Mutex
	mons map[string]*monSched
}

// New returns a scheduler with no monitors registered.
func New(cfg Config) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), mons: make(map[string]*monSched)}
}

// Add registers a monitor at instant now. Its first checkpoint is due
// after Tmin — the scheduler has no rate history yet, so it starts
// eager and lets the first observations back the interval off.
func (s *Scheduler) Add(name string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mons[name]; ok {
		return
	}
	s.mons[name] = &monSched{
		lastObs:     now,
		interval:    s.cfg.Tmin,
		lastChecked: now,
		next:        now.Add(s.cfg.Tmin),
	}
}

// Reset re-arms the named monitor after a shard-local recovery reset:
// the rate history is cleared (the shard's cumulative counter was
// restarted from zero, so the old lastCount would read as a huge
// negative delta) and the next checkpoint is due after Tmin — the same
// eager start as Add, because the freshly reset monitor has no rate
// history to trust. Unknown names are ignored.
func (s *Scheduler) Reset(name string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mons[name]
	if m == nil {
		return
	}
	m.lastCount = 0
	m.lastObs = now
	m.rate = 0
	m.interval = s.cfg.Tmin
	m.lastChecked = now
	m.next = now.Add(s.cfg.Tmin)
}

// Observe feeds the monitor's cumulative event count (the history
// database's EventCount) at instant now: the delta against the
// previous observation becomes a rate sample folded into the EWMA, and
// the effective interval is re-derived from the smoothed rate. Calling
// it every tick — not just when the monitor is checked — keeps idle
// monitors' rates decaying toward zero, which is what backs their
// intervals off to Tmax.
func (s *Scheduler) Observe(name string, count int64, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mons[name]
	if m == nil {
		return
	}
	dt := now.Sub(m.lastObs)
	if dt <= 0 {
		return
	}
	sample := float64(count-m.lastCount) / dt.Seconds()
	if sample < 0 {
		sample = 0 // counter reset (new database); re-learn from here
	}
	m.lastCount = count
	m.lastObs = now
	m.rate = s.cfg.Alpha*sample + (1-s.cfg.Alpha)*m.rate
	m.interval = s.intervalFor(m.rate)
	// A shrinking interval must pull the already-armed deadline in:
	// an idle monitor sits on a Tmax-distant next, and a burst that
	// drops its interval to Tmin would otherwise wait out the stale
	// deadline, building a segment far past TargetBatch before its
	// first checkpoint. (A growing interval leaves an earlier armed
	// deadline alone — one possibly-early check is harmless.)
	if next := m.lastChecked.Add(m.interval); next.Before(m.next) {
		m.next = next
	}
}

// intervalFor maps a smoothed rate to an effective interval: the time
// a monitor at that rate needs to accumulate TargetBatch events,
// clamped to [Tmin, Tmax]. A (near-)zero rate means idle: back off all
// the way. The Tmax clamp is applied in the float domain — an EWMA
// decaying toward zero passes through rates tiny enough that the
// nanosecond count overflows time.Duration, and the overflowed
// (negative) value would otherwise clamp to Tmin, checking an idle
// monitor at maximum frequency.
func (s *Scheduler) intervalFor(rate float64) time.Duration {
	if rate <= 0 {
		return s.cfg.Tmax
	}
	ns := float64(s.cfg.TargetBatch) / rate * float64(time.Second)
	if ns >= float64(s.cfg.Tmax) {
		return s.cfg.Tmax
	}
	if iv := time.Duration(ns); iv > s.cfg.Tmin {
		return iv
	}
	return s.cfg.Tmin
}

// Due returns the monitors whose next checkpoint instant has arrived,
// in name order (deterministic for tests and for the detector's
// monitor-ordered violation reporting).
func (s *Scheduler) Due(now time.Time) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var due []string
	for name, m := range s.mons {
		if !m.next.After(now) {
			due = append(due, name)
		}
	}
	sort.Strings(due)
	return due
}

// MarkChecked records that the monitor was just checked at instant
// now: its next checkpoint is one effective interval away.
func (s *Scheduler) MarkChecked(name string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.mons[name]; m != nil {
		m.lastChecked = now
		m.next = now.Add(m.interval)
	}
}

// NextWake returns how long after now the earliest registered monitor
// becomes due (zero if one is already due), and false when no monitor
// is registered.
func (s *Scheduler) NextWake(now time.Time) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.mons) == 0 {
		return 0, false
	}
	first := time.Time{}
	for _, m := range s.mons {
		if first.IsZero() || m.next.Before(first) {
			first = m.next
		}
	}
	d := first.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}

// Interval returns the monitor's current effective checking interval
// (zero when the monitor is not registered).
func (s *Scheduler) Interval(name string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.mons[name]; m != nil {
		return m.interval
	}
	return 0
}

// Intervals returns every registered monitor's current effective
// interval — the observability hook behind Detector.Intervals.
func (s *Scheduler) Intervals() map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.mons))
	for name, m := range s.mons {
		out[name] = m.interval
	}
	return out
}

// Rate returns the monitor's smoothed event rate in events/second.
func (s *Scheduler) Rate(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.mons[name]; m != nil {
		return m.rate
	}
	return 0
}
