package detect

import (
	"context"
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

var epoch = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func managerSpec() monitor.Spec {
	return monitor.Spec{
		Name: "m", Kind: monitor.OperationManager,
		Conditions: []string{"ok"},
	}
}

func coordSpec() monitor.Spec {
	return monitor.Spec{
		Name: "buf", Kind: monitor.CommunicationCoordinator,
		Conditions:  []string{"notFull", "notEmpty"},
		Rmax:        2,
		SendProc:    "Send",
		ReceiveProc: "Receive",
	}
}

type fixture struct {
	db  *history.DB
	mon *monitor.Monitor
	det *Detector
	rt  *proc.Runtime
	clk *clock.Virtual
}

func newFixture(t *testing.T, spec monitor.Spec, hooks monitor.Hooks, cfg Config) *fixture {
	t.Helper()
	db := history.New(history.WithFullTrace())
	clk := clock.NewVirtual(epoch)
	m, err := monitor.New(spec,
		monitor.WithRecorder(db),
		monitor.WithClock(clk),
		monitor.WithHooks(hooks),
	)
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	cfg.Clock = clk
	cfg.HoldWorld = true
	det := New(db, cfg, m)
	return &fixture{db: db, mon: m, det: det, rt: proc.NewRuntime(), clk: clk}
}

func waitFor(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestCleanWorkloadNoViolations(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
		Tmax: time.Minute, Tio: time.Minute,
	})
	// A condition-variable ping-pong plus plain critical sections.
	var wg sync.WaitGroup
	wg.Add(1)
	f.rt.Spawn("waiter", func(p *proc.P) {
		defer wg.Done()
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		if err := f.mon.Wait(p, "Op", "ok"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "waiter queued", func() bool { return f.mon.CondLen("ok") == 1 })
	for i := 0; i < 4; i++ {
		f.rt.Spawn("worker", func(p *proc.P) {
			if err := f.mon.Enter(p, "Op"); err != nil {
				return
			}
			_ = f.mon.SignalExit(p, "Op", "ok")
		})
	}
	f.rt.Join()
	wg.Wait()
	if vs := f.det.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean workload produced violations: %v", vs)
	}
	// Second checkpoint over an empty segment must also be silent.
	if vs := f.det.CheckNow(); len(vs) != 0 {
		t.Fatalf("empty segment produced violations: %v", vs)
	}
}

func TestCleanCoordinatorWorkload(t *testing.T) {
	t.Parallel()
	f := newFixture(t, coordSpec(), monitor.Hooks{}, Config{
		Tmax: time.Minute, Tio: time.Minute,
	})
	var mu sync.Mutex
	buf := 0
	send := func(p *proc.P) {
		if err := f.mon.Enter(p, "Send"); err != nil {
			return
		}
		mu.Lock()
		full := buf == 2
		mu.Unlock()
		if full {
			if err := f.mon.Wait(p, "Send", "notFull"); err != nil {
				return
			}
		}
		mu.Lock()
		buf++
		mu.Unlock()
		_ = f.mon.SignalExit(p, "Send", "notEmpty")
	}
	recv := func(p *proc.P) {
		if err := f.mon.Enter(p, "Receive"); err != nil {
			return
		}
		mu.Lock()
		empty := buf == 0
		mu.Unlock()
		if empty {
			if err := f.mon.Wait(p, "Receive", "notEmpty"); err != nil {
				return
			}
		}
		mu.Lock()
		buf--
		mu.Unlock()
		_ = f.mon.SignalExit(p, "Receive", "notFull")
	}
	// Strictly alternating send/recv pairs keep the schedule simple and
	// exercise both procedures without racing the shared buf counter.
	for i := 0; i < 6; i++ {
		f.rt.Spawn("producer", send)
		f.rt.Join()
		f.rt.Spawn("consumer", recv)
		f.rt.Join()
		if vs := f.det.CheckNow(); len(vs) != 0 {
			t.Fatalf("round %d: clean coordinator produced violations: %v", i, vs)
		}
	}
}

func TestDetectsEnterMutexViolation(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.EnterMutexViolation)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{})
	inj.Arm()

	hold := make(chan struct{})
	f.rt.Spawn("holder", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "holder inside", func() bool { return f.mon.InsideCount() == 1 })
	f.rt.Spawn("intruder", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "injection fired", func() bool { return inj.Fired() > 0 })
	waitFor(t, "intruder gone", func() bool { return f.mon.InsideCount() == 1 })
	close(hold)
	f.rt.Join()

	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST3c) {
		t.Fatalf("violations = %v, want ST-3c", vs)
	}
	if !rules.HasFault(vs, faults.EnterMutexViolation) {
		t.Fatalf("violations = %v, want EnterMutexViolation classification", vs)
	}
}

func TestDetectsEnterLostProcess(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.EnterLostProcess)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{Tio: time.Minute})

	hold := make(chan struct{})
	f.rt.Spawn("holder", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "holder inside", func() bool { return f.mon.InsideCount() == 1 })
	inj.Arm()
	victim := f.rt.Spawn("victim", func(p *proc.P) {
		_ = f.mon.Enter(p, "Op")
	})
	waitFor(t, "victim parked", func() bool { return victim.Status() == proc.Parked })
	close(hold)
	waitFor(t, "monitor free", func() bool { return f.mon.InsideCount() == 0 })

	vs := f.det.CheckNow()
	// The reconstruction believes the victim was handed the monitor at
	// the holder's exit; in reality it vanished. Depending on whether a
	// handoff happened before the checkpoint, the divergence surfaces on
	// Enter-0-List (ST-1) or on Running-List (ST-R).
	if !rules.HasRule(vs, rules.ST1) && !rules.HasRule(vs, rules.STrn) {
		t.Fatalf("violations = %v, want ST-1 or ST-R for the lost process", vs)
	}
	f.rt.AbortAll()
	f.rt.Join()
}

func TestDetectsEnterNoResponseViaTio(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.EnterNoResponse)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{Tio: 10 * time.Second})
	inj.Arm()
	victim := f.rt.Spawn("victim", func(p *proc.P) {
		_ = f.mon.Enter(p, "Op") // blocked although the monitor is free
	})
	waitFor(t, "victim parked", func() bool { return victim.Status() == proc.Parked })

	// The blocked-on-free-monitor event violates ST-3d immediately.
	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST3d) {
		t.Fatalf("violations = %v, want ST-3d", vs)
	}
	// And once Tio elapses, the starvation timer fires too: the victim
	// is on both the actual and the reconstructed entry queue.
	f.clk.Advance(time.Minute)
	vs = f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST6) || !rules.HasFault(vs, faults.EnterNoResponse) {
		t.Fatalf("violations = %v, want ST-6/EnterNoResponse", vs)
	}
	f.rt.AbortAll()
	f.rt.Join()
}

func TestDetectsWaitLostProcess(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.WaitLostProcess)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{})
	inj.Arm()
	victim := f.rt.Spawn("victim", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Wait(p, "Op", "ok")
	})
	waitFor(t, "victim parked", func() bool { return victim.Status() == proc.Parked })
	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST2) {
		t.Fatalf("violations = %v, want ST-2", vs)
	}
	f.rt.AbortAll()
	f.rt.Join()
}

func TestDetectsInternalTerminationViaTmax(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{Tmax: 10 * time.Second})
	f.rt.Spawn("dier", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		// Terminates inside the monitor: fault I.d.
	})
	f.rt.Join()
	// Within Tmax: no violation yet.
	if vs := f.det.CheckNow(); len(vs) != 0 {
		t.Fatalf("premature violations: %v", vs)
	}
	f.clk.Advance(time.Minute)
	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST5) || !rules.HasFault(vs, faults.InternalTermination) {
		t.Fatalf("violations = %v, want ST-5/InternalTermination", vs)
	}
}

func TestDetectsEntryStarvationViaTio(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.WaitEntryStarved, faults.FireEveryTime())
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{Tio: 10 * time.Second})
	inj.Arm()
	inj.SetVictim(2)

	hold := make(chan struct{})
	f.rt.Spawn("holder", func(p *proc.P) { // pid 1
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "holder inside", func() bool { return f.mon.InsideCount() == 1 })
	victim := f.rt.Spawn("victim", func(p *proc.P) { // pid 2
		_ = f.mon.Enter(p, "Op")
	})
	waitFor(t, "victim queued", func() bool { return f.mon.EntryLen() == 1 })
	close(hold)
	waitFor(t, "monitor free, victim skipped", func() bool { return f.mon.InsideCount() == 0 })
	_ = victim

	vs := f.det.CheckNow()
	// The reconstruction hands the monitor to the skipped victim, so the
	// starvation shows up as an Enter-0-List / Running-List divergence.
	if !rules.HasRule(vs, rules.ST1) && !rules.HasRule(vs, rules.STrn) {
		t.Fatalf("violations = %v, want ST-1 or ST-R for the starved victim", vs)
	}
	f.rt.AbortAll()
	f.rt.Join()
}

func TestDetectsSignalMonitorNotReleased(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{})
	inj.Arm()
	f.rt.Spawn("p", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.STrn) || !rules.HasFault(vs, faults.SignalMonitorNotReleased) {
		t.Fatalf("violations = %v, want ST-R/SignalMonitorNotReleased", vs)
	}
}

func TestDetectsBareEntry(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{})
	f.rt.Spawn("ghost", func(p *proc.P) {
		f.mon.InjectBareEntry(p, "Op")
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	vs := f.det.CheckNow()
	if !rules.HasRule(vs, rules.ST3b) || !rules.HasFault(vs, faults.EnterNotObserved) {
		t.Fatalf("violations = %v, want ST-3b/EnterNotObserved", vs)
	}
}

func TestCheckpointCarriesStateAcrossSegments(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{})
	// Segment 1: P1 enters and stays inside across the checkpoint.
	hold := make(chan struct{})
	f.rt.Spawn("p1", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = f.mon.Exit(p, "Op")
	})
	waitFor(t, "p1 inside", func() bool { return f.mon.InsideCount() == 1 })
	if vs := f.det.CheckNow(); len(vs) != 0 {
		t.Fatalf("segment 1 violations: %v", vs)
	}
	// Segment 2: P1 exits; the seeded Running-List must explain it.
	close(hold)
	f.rt.Join()
	if vs := f.det.CheckNow(); len(vs) != 0 {
		t.Fatalf("segment 2 violations: %v", vs)
	}
}

func TestRunLoopPeriodicChecks(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{Interval: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []rules.Violation, 1)
	go func() { done <- f.det.Run(ctx) }()

	// Three virtual seconds → three periodic checks. Each Advance must
	// wait until the loop has re-armed its timer.
	for i := 1; i <= 3; i++ {
		waitFor(t, "timer armed", func() bool { return f.clk.Pending() > 0 })
		f.clk.Advance(time.Second)
		want := i
		waitFor(t, "check completed", func() bool { return f.det.Stats().Checks >= want })
	}
	cancel()
	vs := <-done
	if len(vs) != 0 {
		t.Fatalf("idle run produced violations: %v", vs)
	}
	if got := f.det.Stats().Checks; got < 4 {
		t.Fatalf("Checks = %d, want ≥ 4 (3 periodic + 1 final)", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{})
	f.rt.Spawn("p", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	f.det.CheckNow()
	st := f.det.Stats()
	if st.Checks != 1 || st.Events != 2 || st.Violations != 0 {
		t.Fatalf("Stats = %+v, want 1 check / 2 events / 0 violations", st)
	}
}

func TestOnViolationCallback(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var seen []rules.Violation
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	db := history.New()
	clk := clock.NewVirtual(epoch)
	m, err := monitor.New(managerSpec(),
		monitor.WithRecorder(db), monitor.WithClock(clk), monitor.WithHooks(inj.Hooks()))
	if err != nil {
		t.Fatal(err)
	}
	det := New(db, Config{
		Clock:     clk,
		HoldWorld: true,
		OnViolation: func(v rules.Violation) {
			mu.Lock()
			seen = append(seen, v)
			mu.Unlock()
		},
	}, m)
	inj.Arm()
	rt := proc.NewRuntime()
	rt.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	rt.Join()
	det.CheckNow()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("OnViolation never called")
	}
	if seen[0].Phase != "periodic" {
		t.Fatalf("violation phase = %q, want periodic", seen[0].Phase)
	}
}

func TestCheckpointStatesRecordedInDatabase(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{})
	f.rt.Spawn("p", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	f.det.CheckNow()
	f.det.CheckNow()
	states := f.db.States()
	if len(states) != 2 {
		t.Fatalf("database recorded %d checkpoint states, want 2", len(states))
	}
	if states[0].Monitor != "m" || states[0].LastSeq != 2 {
		t.Fatalf("first state = %+v, want monitor m at LastSeq 2", states[0])
	}
	if last, ok := f.db.LastState("m"); !ok || last.LastSeq != 2 {
		t.Fatalf("LastState = %+v,%v", last, ok)
	}
}

func TestNoFreezeConfigurationStillSound(t *testing.T) {
	t.Parallel()
	// The ablation configuration (HoldWorld=false) thaws monitors before
	// replaying; it must remain free of false positives under load.
	db := history.New()
	m, err := monitor.New(managerSpec(), monitor.WithRecorder(db))
	if err != nil {
		t.Fatal(err)
	}
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock: clock.Real{}, HoldWorld: false,
	}, m)
	rt := proc.NewRuntime()
	for i := 0; i < 4; i++ {
		rt.Spawn("w", func(p *proc.P) {
			for j := 0; j < 100; j++ {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
	}
	stop := make(chan struct{})
	checked := make(chan struct{})
	go func() {
		defer close(checked)
		for {
			select {
			case <-stop:
				return
			default:
				if vs := det.CheckNow(); len(vs) != 0 {
					t.Errorf("no-freeze config produced violations: %v", vs)
					return
				}
			}
		}
	}()
	rt.Join()
	close(stop)
	<-checked
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("final check: %v", vs)
	}
}

func TestViolationsAccumulate(t *testing.T) {
	t.Parallel()
	inj := faults.NewInjector(faults.SignalMonitorNotReleased)
	f := newFixture(t, managerSpec(), inj.Hooks(), Config{})
	inj.Arm()
	f.rt.Spawn("p", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	f.det.CheckNow()
	if len(f.det.Violations()) == 0 {
		t.Fatal("Violations() empty after detection")
	}
}
