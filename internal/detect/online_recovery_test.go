package detect

// The acceptance test for shard-local online recovery: inject faults
// into k of n monitors under the per-monitor adaptive+batched
// checkpoint mode with Policy=ResetMonitor, and require
//
//	(a) no world stop — checkpoints keep completing after the resets
//	    were applied, observed via Stats, and every untouched monitor's
//	    driver runs its whole workload without ever being stalled or
//	    aborted;
//	(b) the untouched monitors' violation sets and their exported
//	    per-monitor event streams are identical to a no-recovery
//	    baseline run of the same workload.
//
// Per-monitor streams are compared with the global sequence numbers
// normalised out: the workload is concurrent, so how the monitors'
// appends interleave in the global sequence varies run to run by
// design — what must not vary is which events each untouched monitor
// recorded, in which per-monitor order, with which payloads. Each
// monitor's drivers are deterministic and the monitors share a virtual
// clock that never advances, so after zeroing Seq the re-encoded
// per-monitor streams must match byte for byte.

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/export"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/recovery"
	"robustmon/internal/rules"
)

// The workload: two monitors wedged by a keep-lock fault (reset by
// recovery when enabled), one with a benign deterministic
// wait-no-block fault (never covered by recovery — its violations must
// come out identical in both runs), and two clean ones.
var (
	faultyMons    = []string{"faulty0", "faulty1"}
	untouchedMons = []string{"benign", "good0", "good1"}
)

// recoveryRunResult carries everything the equivalence comparison
// needs out of one run.
type recoveryRunResult struct {
	stats      Stats
	violations []rules.Violation
	actions    []recovery.Action
	replay     *export.Replay
}

// runOnlineRecoveryWorkload executes the workload once, with or
// without the recovery manager wired in, exporting to a WAL directory.
func runOnlineRecoveryWorkload(t *testing.T, withRecovery bool) recoveryRunResult {
	t.Helper()
	db := history.New()
	monClk := clock.NewVirtual(epoch) // never advanced: deterministic event times

	injectors := map[string]*faults.Injector{
		"faulty0": faults.NewInjector(faults.SignalMonitorNotReleased),
		"faulty1": faults.NewInjector(faults.SignalMonitorNotReleased),
		"benign":  faults.NewInjector(faults.WaitNoBlock),
	}
	names := append(append([]string(nil), faultyMons...), untouchedMons...)
	sort.Strings(names)
	mons := make(map[string]*monitor.Monitor, len(names))
	ordered := make([]*monitor.Monitor, 0, len(names))
	for _, name := range names {
		opts := []monitor.Option{monitor.WithRecorder(db), monitor.WithClock(monClk)}
		if inj := injectors[name]; inj != nil {
			opts = append(opts, monitor.WithHooks(inj.Hooks()))
		}
		m, err := monitor.New(monitor.Spec{
			Name:       name,
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		mons[name] = m
		ordered = append(ordered, m)
	}

	sink, err := export.NewWALSink(filepath.Join(t.TempDir(), "wal"), export.WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	exp := export.New(sink, export.Config{Policy: export.Block})

	rt := proc.NewRuntime()
	var mgr *recovery.Manager
	cfg := Config{
		Clock:       clock.Real{},
		HoldWorld:   false, // per-monitor mode: the whole point
		Workers:     4,
		BatchSize:   8,
		MinInterval: 2 * time.Millisecond,
		MaxInterval: 25 * time.Millisecond,
		TargetBatch: 8,
		Exporter:    exp,
	}
	if withRecovery {
		mgr = recovery.NewManager(recovery.ResetMonitor, rt,
			mons["faulty0"], mons["faulty1"]) // k of n: benign stays uncovered
		cfg.OnViolation = mgr.Handle
	}
	det := New(db, cfg, ordered...)
	if withRecovery {
		mgr.SetResetter(det)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan []rules.Violation, 1)
	go func() { runDone <- det.Run(ctx) }()

	const goodPairs = 400
	var untouchedDone []chan struct{}
	pair := func(m *monitor.Monitor, p *proc.P) error {
		if err := m.Enter(p, "Op"); err != nil {
			return err
		}
		return m.Exit(p, "Op")
	}
	for _, name := range []string{"good0", "good1"} {
		m := mons[name]
		done := make(chan struct{})
		untouchedDone = append(untouchedDone, done)
		rt.Spawn(name, func(p *proc.P) {
			defer close(done)
			for j := 0; j < goodPairs; j++ {
				if err := pair(m, p); err != nil {
					t.Errorf("untouched %s driver stalled/aborted at op %d: %v", m.Name(), j, err)
					return
				}
			}
		})
	}
	{
		m, inj := mons["benign"], injectors["benign"]
		done := make(chan struct{})
		untouchedDone = append(untouchedDone, done)
		rt.Spawn("benign", func(p *proc.P) {
			defer close(done)
			for j := 0; j < 5; j++ {
				if err := pair(m, p); err != nil {
					t.Errorf("benign driver failed clean prefix: %v", err)
					return
				}
			}
			// Deterministic benign fault: the Wait is recorded and queued
			// but does not block, so every later event by this process is
			// an ST-4 "event by a process on a waiting list" — the same
			// finite violation stream in both runs, and the driver never
			// parks.
			inj.Arm()
			if err := m.Enter(p, "Op"); err != nil {
				t.Errorf("benign Enter: %v", err)
				return
			}
			if err := m.Wait(p, "Op", "ok"); err != nil {
				t.Errorf("benign Wait: %v", err)
				return
			}
			if err := m.Exit(p, "Op"); err != nil {
				t.Errorf("benign Exit: %v", err)
				return
			}
			for j := 0; j < 10; j++ {
				if err := pair(m, p); err != nil {
					t.Errorf("benign driver tail: %v", err)
					return
				}
			}
		})
	}
	for _, name := range faultyMons {
		m, inj := mons[name], injectors[name]
		rt.Spawn(name, func(p *proc.P) {
			for j := 0; j < 10; j++ {
				if err := pair(m, p); err != nil {
					return
				}
			}
			inj.Arm()
			// This Exit keeps the lock (the injected fault): the monitor
			// is wedged with a stale occupant until recovery resets it —
			// or forever, in the baseline run.
			if err := pair(m, p); err != nil {
				return
			}
			for j := 0; j < 10; j++ {
				// Without recovery the first Enter parks forever (AbortAll
				// unwinds it at the end). With recovery the reset either
				// aborts the parked Enter (ErrAborted → return) or, if it
				// landed between ops, lets the loop finish cleanly.
				if err := pair(m, p); err != nil {
					return
				}
			}
		})
	}

	for _, done := range untouchedDone {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("untouched driver never finished — a reset stopped the world?")
		}
	}
	if withRecovery {
		// (a) the resets happened, and checkpoints kept completing
		// afterwards: recovery never stopped the detection pipeline.
		deadline := time.Now().Add(20 * time.Second)
		for det.Stats().Resets < len(faultyMons) {
			if time.Now().After(deadline) {
				t.Fatalf("only %d resets applied, want ≥ %d", det.Stats().Resets, len(faultyMons))
			}
			time.Sleep(time.Millisecond)
		}
		checksAtReset := det.Stats().Checks
		for det.Stats().Checks <= checksAtReset {
			if time.Now().After(deadline) {
				t.Fatal("no checkpoint completed after the resets — world stopped")
			}
			time.Sleep(time.Millisecond)
		}
	}

	cancel()
	violations := <-runDone
	if err := exp.Close(); err != nil {
		t.Fatalf("exporter close: %v", err)
	}
	rt.AbortAll() // unwind permanently parked faulty drivers (baseline run)
	rt.Join()

	rep, err := export.ReadDir(sink.Dir())
	if err != nil {
		t.Fatal(err)
	}
	res := recoveryRunResult{stats: det.Stats(), violations: violations, replay: rep}
	if mgr != nil {
		res.actions = mgr.Log()
	}
	return res
}

// untouchedViolationKeys projects the run's violations onto the
// untouched monitors' set of (rule, monitor, pid, cond) keys —
// timestamps, messages and global sequence numbers vary with
// checkpoint instants and are excluded, like in violKey.
func untouchedViolationKeys(vs []rules.Violation) map[string]bool {
	keep := make(map[string]bool, len(untouchedMons))
	for _, m := range untouchedMons {
		keep[m] = true
	}
	out := make(map[string]bool)
	for _, v := range vs {
		if keep[v.Monitor] {
			out[fmt.Sprintf("%s|%s|%d|%s", v.Rule, v.Monitor, v.Pid, v.Cond)] = true
		}
	}
	return out
}

// normalizedStream re-encodes one monitor's events with the global
// sequence numbers zeroed (see the file comment for why).
func normalizedStream(t *testing.T, events event.Seq, mon string) []byte {
	t.Helper()
	var own event.Seq
	for _, e := range events {
		if e.Monitor == mon {
			e.Seq = 0
			own = append(own, e)
		}
	}
	var buf bytes.Buffer
	if err := event.WriteBinary(&buf, own); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOnlineRecoveryDoesNotStopTheWorld(t *testing.T) {
	t.Parallel()
	baseline := runOnlineRecoveryWorkload(t, false)
	recovered := runOnlineRecoveryWorkload(t, true)

	// The baseline really is faulty and really is reset-free.
	if len(baseline.violations) == 0 {
		t.Fatal("baseline run found no violations — the injectors never fired")
	}
	if baseline.stats.Resets != 0 || len(baseline.replay.Markers) != 0 {
		t.Fatalf("baseline run reset (%d) or exported markers (%d)",
			baseline.stats.Resets, len(baseline.replay.Markers))
	}

	// The recovery run reset every covered faulty monitor, logged it,
	// and the markers round-tripped through the WAL.
	if recovered.stats.Resets < len(faultyMons) {
		t.Fatalf("recovery run applied %d resets, want ≥ %d", recovered.stats.Resets, len(faultyMons))
	}
	if len(recovered.replay.Markers) != recovered.stats.Resets {
		t.Fatalf("%d markers exported for %d resets", len(recovered.replay.Markers), recovered.stats.Resets)
	}
	markerMons := make(map[string]bool)
	for _, mk := range recovered.replay.Markers {
		markerMons[mk.Monitor] = true
		if mk.Horizon <= 0 || mk.Rule == "" {
			t.Fatalf("malformed marker %+v", mk)
		}
	}
	for _, name := range faultyMons {
		if !markerMons[name] {
			t.Fatalf("no recovery marker for %s (markers: %+v)", name, recovered.replay.Markers)
		}
	}
	for _, name := range untouchedMons {
		if markerMons[name] {
			t.Fatalf("untouched monitor %s was reset", name)
		}
	}
	shardLocal := 0
	for _, a := range recovered.actions {
		if a.Taken == "monitor reset (shard-local)" {
			shardLocal++
		} else if strings.Contains(a.Taken, "monitor reset") {
			t.Fatalf("recovery took a non-shard-local reset: %+v", a)
		}
	}
	if shardLocal < len(faultyMons) {
		t.Fatalf("manager log shows %d shard-local resets, want ≥ %d:\n%+v",
			shardLocal, len(faultyMons), recovered.actions)
	}

	// (b) untouched monitors are bit-for-bit unaffected by recovery:
	// identical violation sets…
	wantKeys := untouchedViolationKeys(baseline.violations)
	gotKeys := untouchedViolationKeys(recovered.violations)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("untouched monitors' violation sets differ:\nbaseline:  %v\nrecovered: %v", wantKeys, gotKeys)
	}
	if len(wantKeys) == 0 {
		t.Fatal("benign monitor produced no violations — the comparison is vacuous")
	}
	// …and identical exported event streams (modulo global sequence
	// numbering; see the file comment).
	for _, name := range untouchedMons {
		want := normalizedStream(t, baseline.replay.Events, name)
		got := normalizedStream(t, recovered.replay.Events, name)
		if !bytes.Equal(got, want) {
			t.Fatalf("monitor %s exported different events with recovery enabled (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}
	// The faulty monitors' exported streams have the reset gap: the
	// recovery run must not export MORE faulty-monitor events than the
	// baseline plus its fresh-life tail, and the discard is accounted.
	if recovered.stats.Resets > 0 && recovered.stats.ResetDropped < 0 {
		t.Fatalf("negative ResetDropped: %+v", recovered.stats)
	}
}
