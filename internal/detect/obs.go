package detect

import (
	"time"

	"robustmon/internal/obs"
	"robustmon/internal/rules"
)

// Detector self-observability. Config.Obs instruments the checkpoint
// pipeline on an obs registry — checkpoint and freeze latency
// histograms, check/replay/violation/reset counters, and per-monitor
// effective-interval gauges under the adaptive scheduler — and
// Config.HealthEvery periodically captures the whole registry as a
// health snapshot sent through the exporter's ConsumeHealth, so the
// export WAL carries the detector's health timeline alongside its
// trace (see internal/export and `montrace stats`).

// HealthExporter is the old optional extension through which health
// snapshots reached the export stream.
//
// Deprecated: ConsumeHealth is part of TraceExporter; the detector no
// longer type-sniffs for this interface.
type HealthExporter interface {
	ConsumeHealth(obs.HealthRecord)
}

// detMetrics are the detector's obs handles. checkNs is always live —
// a standalone histogram when no registry is configured — because
// Stats.CheckP50/CheckP99 are computed from it either way; every
// other handle is nil (a no-op) without Config.Obs.
type detMetrics struct {
	checks, violations   *obs.Counter
	eventsReplayed       *obs.Counter
	resets, resetDropped *obs.Counter
	healthsEmitted       *obs.Counter
	checkNs, freezeNs    *obs.Histogram
	// intervals are the per-monitor effective-interval gauges
	// (detect_interval_ns{monitor="..."}), resolved once at
	// construction; nil unless the adaptive scheduler is on.
	intervals map[string]*obs.Gauge
}

func newDetMetrics(reg *obs.Registry, monitors []string, adaptive bool) detMetrics {
	if reg == nil {
		return detMetrics{checkNs: obs.NewHistogram()}
	}
	m := detMetrics{
		checks:         reg.Counter("detect_checks_total"),
		violations:     reg.Counter("detect_violations_total"),
		eventsReplayed: reg.Counter("detect_events_replayed_total"),
		resets:         reg.Counter("detect_resets_total"),
		resetDropped:   reg.Counter("detect_reset_dropped_events_total"),
		healthsEmitted: reg.Counter("detect_health_emitted_total"),
		checkNs:        reg.Histogram("detect_check_ns"),
		freezeNs:       reg.Histogram("detect_freeze_ns"),
	}
	if adaptive {
		m.intervals = make(map[string]*obs.Gauge, len(monitors))
		for _, name := range monitors {
			m.intervals[name] = reg.Gauge(`detect_interval_ns{monitor="` + name + `"}`)
		}
	}
	return m
}

// maybeEmitHealthLocked sends a health snapshot through the exporter
// when the cadence has elapsed. Called at checkpoint boundaries under
// d.mu, so snapshots interleave with checkpoints, never inside one;
// the first checkpoint always emits (the timeline's anchor). The
// horizon is the database's current LastSeq — the same windowing key
// segment records carry — which is what lets `montrace stats` window
// the timeline through the trace-store index.
//
// One registry snapshot serves both consumers at the boundary: the
// exported health record and the self-watching rule engine's Eval
// (Config.Rules) — the rules judge exactly the timeline the WAL
// carries, and the snapshot cost is paid once.
func (d *Detector) maybeEmitHealthLocked() {
	if d.health == nil {
		return
	}
	now := d.cfg.Clock.Now()
	if !d.lastHealth.IsZero() && now.Sub(d.lastHealth) < d.cfg.HealthEvery {
		return
	}
	d.lastHealth = now
	d.met.healthsEmitted.Inc()
	seq := d.db.LastSeq()
	snap := d.cfg.Obs.Snapshot()
	d.health.ConsumeHealth(obs.HealthRecord{
		At:      now,
		Seq:     seq,
		Metrics: snap,
	})
	d.evalRulesLocked(now, seq, snap)
}

// evalRulesLocked runs the self-watching threshold rules against the
// health snapshot just emitted. Every transition (fire or clear) is
// persisted through the exporter as a WAL alert record; a fire
// additionally raises a synthetic meta-violation (rules.Meta, Phase
// "meta") through the ordinary found/OnViolation path — pipeline
// degradation surfaces exactly where application faults do — and,
// when the rule names a ResetMonitor, enqueues a shard-local
// RequestReset that the caller's boundary drain applies before the
// checkpoint returns. Caller holds d.mu.
func (d *Detector) evalRulesLocked(now time.Time, seq int64, snap obs.Snapshot) {
	if d.rules == nil {
		return
	}
	d.alertBuf = d.rules.Eval(d.alertBuf[:0], now, seq, snap)
	for _, a := range d.alertBuf {
		d.health.ConsumeAlert(a)
		if !a.Firing {
			continue
		}
		v := rules.Violation{
			Rule:    rules.Meta,
			Monitor: a.Rule,
			Seq:     a.Seq,
			At:      a.At,
			Phase:   "meta",
			Message: a.String(),
		}
		d.stats.Violations++
		d.met.violations.Inc()
		d.found = append(d.found, v)
		if d.cfg.OnViolation != nil {
			d.cfg.OnViolation(v)
		}
		if target := d.resetFor[a.Rule]; target != "" {
			d.RequestReset(target, v)
		}
	}
}
