package detect

import (
	"sync"
	"testing"

	"robustmon/internal/clock"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

func allocSpec() monitor.Spec {
	return monitor.Spec{
		Name: "alloc", Kind: monitor.ResourceAllocator,
		Conditions:  []string{"free"},
		Procedures:  []string{"Acquire", "Release"},
		CallOrder:   "path Acquire ; Release end",
		AcquireProc: "Acquire",
		ReleaseProc: "Release",
	}
}

func newAllocFixture(t *testing.T) (*monitor.Monitor, *RealTime, *proc.Runtime) {
	t.Helper()
	db := history.New()
	rt, err := NewRealTime(db, []monitor.Spec{allocSpec()}, nil)
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	m, err := monitor.New(allocSpec(),
		monitor.WithRecorder(rt),
		monitor.WithClock(clock.NewVirtual(epoch)),
	)
	if err != nil {
		t.Fatalf("monitor.New: %v", err)
	}
	return m, rt, proc.NewRuntime()
}

// callProc runs one full monitor procedure call (enter + exit).
func callProc(m *monitor.Monitor, p *proc.P, procName string) {
	if err := m.Enter(p, procName); err != nil {
		return
	}
	_ = m.Exit(p, procName)
}

func TestRealTimeCleanCycles(t *testing.T) {
	t.Parallel()
	m, rt, r := newAllocFixture(t)
	r.Spawn("user", func(p *proc.P) {
		for i := 0; i < 3; i++ {
			callProc(m, p, "Acquire")
			callProc(m, p, "Release")
		}
	})
	r.Join()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("clean cycles produced %v", vs)
	}
}

func TestRealTimeReleaseWithoutAcquire(t *testing.T) {
	t.Parallel()
	m, rt, r := newAllocFixture(t)
	r.Spawn("buggy", func(p *proc.P) {
		callProc(m, p, "Release") // fault III.a
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7b) || !rules.HasFault(vs, faults.ReleaseWithoutAcquire) {
		t.Fatalf("violations = %v, want FD-7b/ReleaseWithoutAcquire", vs)
	}
	if vs[0].Phase != "realtime" {
		t.Fatalf("phase = %q, want realtime", vs[0].Phase)
	}
}

func TestRealTimeSelfDeadlock(t *testing.T) {
	t.Parallel()
	m, rt, r := newAllocFixture(t)
	r.Spawn("buggy", func(p *proc.P) {
		callProc(m, p, "Acquire")
		callProc(m, p, "Acquire") // fault III.c
	})
	r.Join()
	vs := rt.Violations()
	if !rules.HasRule(vs, rules.FD7a) || !rules.HasFault(vs, faults.SelfDeadlock) {
		t.Fatalf("violations = %v, want FD-7a/SelfDeadlock", vs)
	}
}

func TestRealTimePerProcessIsolation(t *testing.T) {
	t.Parallel()
	m, rt, r := newAllocFixture(t)
	// Two processes interleave their cycles; per-process order is fine
	// even though the global sequence alternates.
	var wg sync.WaitGroup
	wg.Add(2)
	gate := make(chan struct{})
	r.Spawn("a", func(p *proc.P) {
		defer wg.Done()
		callProc(m, p, "Acquire")
		<-gate
		callProc(m, p, "Release")
	})
	r.Spawn("b", func(p *proc.P) {
		defer wg.Done()
		callProc(m, p, "Acquire")
		close(gate)
		callProc(m, p, "Release")
	})
	r.Join()
	wg.Wait()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("interleaved clean cycles produced %v", vs)
	}
}

func TestRealTimeIgnoresNonAllocatorMonitors(t *testing.T) {
	t.Parallel()
	db := history.New()
	rt, err := NewRealTime(db, []monitor.Spec{
		{Name: "mgr", Kind: monitor.OperationManager, Conditions: []string{"ok"}},
	}, nil)
	if err != nil {
		t.Fatalf("NewRealTime: %v", err)
	}
	m, err := monitor.New(monitor.Spec{
		Name: "mgr", Kind: monitor.OperationManager, Conditions: []string{"ok"},
	}, monitor.WithRecorder(rt), monitor.WithClock(clock.NewVirtual(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("p", func(p *proc.P) {
		callProc(m, p, "Release") // no order declared: not checked
	})
	r.Join()
	if vs := rt.Violations(); len(vs) != 0 {
		t.Fatalf("non-allocator events checked: %v", vs)
	}
}

func TestRealTimeCallbackFires(t *testing.T) {
	t.Parallel()
	db := history.New()
	var mu sync.Mutex
	var got []rules.Violation
	rt, err := NewRealTime(db, []monitor.Spec{allocSpec()}, func(v rules.Violation) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := monitor.New(allocSpec(),
		monitor.WithRecorder(rt), monitor.WithClock(clock.NewVirtual(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("buggy", func(p *proc.P) { callProc(m, p, "Release") })
	r.Join()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(got))
	}
}

func TestRealTimeRejectsBadSpec(t *testing.T) {
	t.Parallel()
	bad := allocSpec()
	bad.CallOrder = "path ; end"
	if _, err := NewRealTime(history.New(), []monitor.Spec{bad}, nil); err == nil {
		t.Fatal("NewRealTime accepted a broken call-order declaration")
	}
}

func TestRealTimeForwardsEvents(t *testing.T) {
	t.Parallel()
	db := history.New(history.WithFullTrace())
	rt, err := NewRealTime(db, []monitor.Spec{allocSpec()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := monitor.New(allocSpec(),
		monitor.WithRecorder(rt), monitor.WithClock(clock.NewVirtual(epoch)))
	if err != nil {
		t.Fatal(err)
	}
	r := proc.NewRuntime()
	r.Spawn("user", func(p *proc.P) {
		callProc(m, p, "Acquire")
		callProc(m, p, "Release")
	})
	r.Join()
	if got := len(db.Full()); got != 4 {
		t.Fatalf("db got %d events, want 4 (real-time tee must forward)", got)
	}
	// Sequence numbers must come from the wrapped DB.
	full := db.Full()
	for i, e := range full {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}
