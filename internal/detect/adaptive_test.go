package detect

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// violKey projects a violation onto its detection-relevant identity:
// what was found, where, on whom. Timestamps and message text vary
// with checkpoint instants and are excluded on purpose.
type violKey struct {
	rule  rules.ID
	mon   string
	pid   int64
	fault faults.Kind
	seq   int64
}

func violMultiset(vs []rules.Violation) map[violKey]int {
	out := make(map[violKey]int, len(vs))
	for _, v := range vs {
		out[violKey{v.Rule, v.Monitor, v.Pid, v.Fault, v.Seq}]++
	}
	return out
}

// runDeterministicFaulty executes the reference faulty workload — four
// monitors, one process each run strictly in sequence, the
// SignalMonitorNotReleased injector armed on the even monitors — under
// the given detector configuration, checkpointing after every
// monitor's workload via check, and returns every violation found.
func runDeterministicFaulty(t *testing.T, cfg Config, check func(d *Detector, name string)) []rules.Violation {
	t.Helper()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	cfg.Clock = clk
	const nMons = 4
	mons := make([]*monitor.Monitor, nMons)
	injs := make([]*faults.Injector, nMons)
	for i := range mons {
		injs[i] = faults.NewInjector(faults.SignalMonitorNotReleased)
		m, err := monitor.New(monitor.Spec{
			Name:       fmt.Sprintf("mon%02d", i),
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}, monitor.WithRecorder(db), monitor.WithClock(clk), monitor.WithHooks(injs[i].Hooks()))
		if err != nil {
			t.Fatal(err)
		}
		mons[i] = m
	}
	det := New(db, cfg, mons...)
	rt := proc.NewRuntime()
	pair := func(m *monitor.Monitor, n int) {
		rt.Spawn("p", func(p *proc.P) {
			for j := 0; j < n; j++ {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
		rt.Join()
	}
	for i, m := range mons {
		// Eight clean pairs build a multi-batch segment; the injector is
		// armed only for the final pair, so the kept lock cannot
		// deadlock a subsequent Enter.
		pair(m, 8)
		if i%2 == 0 {
			injs[i].Arm()
		}
		pair(m, 1)
		if check != nil {
			check(det, m.Name())
		}
	}
	det.CheckNow()
	return det.Violations()
}

// TestBatchedAdaptiveEquivalence is the acceptance pin for the
// scheduler subsystem: the batched, parallel, subset-checkpointing
// detector must report the identical violation set as the fixed-T
// serial single-drain path over the same recorded trace, for every
// batch size and both checkpoint modes.
func TestBatchedAdaptiveEquivalence(t *testing.T) {
	t.Parallel()
	// Baseline: the paper-faithful serial path — hold-world, one drain
	// per monitor, one worker, whole-world checkpoints.
	baseline := runDeterministicFaulty(t,
		Config{HoldWorld: true, Workers: 1},
		func(d *Detector, _ string) { d.CheckNow() })
	if len(baseline) == 0 {
		t.Fatal("faulty corpus produced no violations")
	}
	want := violMultiset(baseline)

	cases := []struct {
		name string
		cfg  Config
	}{
		{"batch1-holdworld", Config{HoldWorld: true, Workers: 1, BatchSize: 1}},
		{"batch7-holdworld-parallel", Config{HoldWorld: true, Workers: 4, BatchSize: 7}},
		{"batch3-permonitor-parallel", Config{HoldWorld: false, Workers: 2, BatchSize: 3}},
		{"hugebatch-permonitor", Config{HoldWorld: false, Workers: 3, BatchSize: 1 << 20}},
		{"adaptive-knobs-batch5", Config{
			HoldWorld: true, Workers: 4, BatchSize: 5,
			MinInterval: time.Millisecond, MaxInterval: time.Second, TargetBatch: 64,
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			// The variant checkpoints at the same workload positions, but
			// through the adaptive scheduler's subset entry point.
			got := runDeterministicFaulty(t, c.cfg, func(d *Detector, name string) {
				d.checkNames([]string{name})
				d.CheckNow()
			})
			gotSet := violMultiset(got)
			if len(gotSet) != len(want) {
				t.Fatalf("variant found %d distinct violations, baseline %d\nvariant: %v\nbaseline: %v",
					len(gotSet), len(want), got, baseline)
			}
			for k, n := range want {
				if gotSet[k] != n {
					t.Fatalf("violation %+v: baseline ×%d, variant ×%d", k, n, gotSet[k])
				}
			}
		})
	}
}

// collectExporter implements TraceExporter, collecting every teed
// segment for offline merging (markers and health are irrelevant to
// these tests, so those record kinds are explicit no-ops).
type collectExporter struct {
	mu   sync.Mutex
	segs []event.Seq
}

func (c *collectExporter) Consume(monitor string, seg event.Seq) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.segs = append(c.segs, seg)
}

func (c *collectExporter) ConsumeMarker(history.RecoveryMarker) {}
func (c *collectExporter) ConsumeHealth(obs.HealthRecord)       {}
func (c *collectExporter) ConsumeAlert(obsrules.Alert)          {}
func (c *collectExporter) Flush() error                         { return nil }

func (c *collectExporter) merged() event.Seq {
	c.mu.Lock()
	defer c.mu.Unlock()
	return event.Merge(c.segs...)
}

// TestBatchedReplayByteIdenticalExport runs the same deterministic
// workload under BatchSize ∈ {unbatched, 1, 7, exactly-segment-sized,
// huge} and requires the exported trace to be byte-identical across
// all of them: batching may change WAL record framing, but never which
// events are exported nor their global order.
func TestBatchedReplayByteIdenticalExport(t *testing.T) {
	t.Parallel()
	const pairs = 14 // 28 events per monitor: exercises partial final batches
	run := func(batch int) []byte {
		db := history.New()
		clk := clock.NewVirtual(epoch)
		exp := &collectExporter{}
		mons := make([]*monitor.Monitor, 3)
		for i := range mons {
			m, err := monitor.New(monitor.Spec{
				Name:       fmt.Sprintf("m%d", i),
				Kind:       monitor.OperationManager,
				Conditions: []string{"ok"},
				Procedures: []string{"Op"},
			}, monitor.WithRecorder(db), monitor.WithClock(clk))
			if err != nil {
				t.Fatal(err)
			}
			mons[i] = m
		}
		det := New(db, Config{
			Clock: clk, HoldWorld: batch%2 == 0, Workers: 2,
			BatchSize: batch, Exporter: exp,
		}, mons...)
		rt := proc.NewRuntime()
		for _, m := range mons {
			m := m
			rt.Spawn("p", func(p *proc.P) {
				for j := 0; j < pairs; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
				}
			})
			rt.Join()
			det.CheckNow() // mid-run checkpoint: several segments per run
		}
		det.CheckNow()
		var buf bytes.Buffer
		if err := event.WriteBinary(&buf, exp.merged()); err != nil {
			t.Fatal(err)
		}
		if n := len(exp.merged()); n != 3*pairs*2 {
			t.Fatalf("batch %d exported %d events, want %d", batch, n, 3*pairs*2)
		}
		return buf.Bytes()
	}

	baseline := run(0)
	for _, batch := range []int{1, 7, pairs * 2, 1 << 20} {
		if got := run(batch); !bytes.Equal(got, baseline) {
			t.Fatalf("BatchSize=%d export differs from unbatched export (%d vs %d bytes)",
				batch, len(got), len(baseline))
		}
	}
}

// TestRateCounterRaceDuringHoldWorld is the -race workout the
// satellite task asks for: per-shard event counters are appended to
// and polled (as the adaptive scheduler does every tick) while
// hold-world checkpoint barriers freeze and thaw the world.
func TestRateCounterRaceDuringHoldWorld(t *testing.T) {
	t.Parallel()
	db := history.New()
	mons := newManyMonitors(t, db, 5)
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock: clock.Real{}, HoldWorld: true, Workers: 3, BatchSize: 16,
	}, mons...)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 3; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, m := range mons {
						db.EventCount(m.Name())
					}
				}
			}
		}()
	}
	rt := proc.NewRuntime()
	done := make(chan struct{})
	go func() {
		defer close(done)
		hammer(rt, mons, 3, 40)
	}()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		if vs := det.CheckNow(); len(vs) != 0 {
			t.Errorf("violations under load: %v", vs)
			break
		}
	}
	close(stop)
	pollers.Wait()
	var total int64
	for _, m := range mons {
		total += db.EventCount(m.Name())
	}
	if total != db.Total() {
		t.Fatalf("counters sum to %d, database recorded %d", total, db.Total())
	}
}

// TestAdaptiveRunSeparatesHotFromIdle drives one hot and one idle
// monitor through the adaptive Run loop and checks the scheduler's
// observable outcome: the idle monitor's effective interval backs off
// to MaxInterval while the hot monitor's stays below it, and the run
// stays violation-free with nothing left unreplayed.
func TestAdaptiveRunSeparatesHotFromIdle(t *testing.T) {
	t.Parallel()
	db := history.New()
	mons := newManyMonitors(t, db, 2)
	hot, idle := mons[0], mons[1]
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock:       clock.Real{},
		HoldWorld:   false,
		BatchSize:   64,
		MinInterval: time.Millisecond,
		MaxInterval: 250 * time.Millisecond,
		TargetBatch: 64,
	}, hot, idle)
	if det.Intervals() == nil {
		t.Fatal("adaptive detector reports no intervals")
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []rules.Violation, 1)
	go func() { done <- det.Run(ctx) }()

	rt := proc.NewRuntime()
	stopLoad := make(chan struct{})
	rt.Spawn("hot", func(p *proc.P) {
		for {
			select {
			case <-stopLoad:
				return
			default:
				if err := hot.Enter(p, "Op"); err != nil {
					return
				}
				_ = hot.Exit(p, "Op")
			}
		}
	})
	// Give the scheduler several observation ticks over a sustained
	// hot/idle split.
	deadline := time.After(2 * time.Second)
	for {
		ivs := det.Intervals()
		if ivs[idle.Name()] == 250*time.Millisecond && ivs[hot.Name()] < 250*time.Millisecond {
			break
		}
		select {
		case <-deadline:
			t.Errorf("intervals never separated: %v", ivs)
		case <-time.After(5 * time.Millisecond):
			continue
		}
		break
	}
	close(stopLoad)
	rt.Join()
	cancel()
	vs := <-done
	if len(vs) != 0 {
		t.Fatalf("fault-free adaptive run reported violations: %v", vs)
	}
	st := det.Stats()
	if st.Checks < 2 {
		t.Fatalf("adaptive run completed only %d checkpoints", st.Checks)
	}
	if st.Events != int(db.Total()) {
		t.Fatalf("replayed %d events, recorded %d", st.Events, db.Total())
	}
	if st.CheckP99 < st.CheckP50 {
		t.Fatalf("latency quantiles inverted: p50=%v p99=%v", st.CheckP50, st.CheckP99)
	}
}

// TestBatchedCheckpointCleanUnderLoad is the batched twin of
// TestParallelCheckpointCleanUnderLoad: concurrent load in both
// checkpoint modes with a small batch size must replay everything
// exactly once.
func TestBatchedCheckpointCleanUnderLoad(t *testing.T) {
	t.Parallel()
	for _, hold := range []bool{true, false} {
		hold := hold
		name := "hold-world"
		if !hold {
			name = "per-monitor"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := history.New()
			mons := newManyMonitors(t, db, 6)
			det := New(db, Config{
				Tmax: time.Minute, Tio: time.Minute,
				Clock: clock.Real{}, HoldWorld: hold, Workers: 4, BatchSize: 8,
			}, mons...)
			rt := proc.NewRuntime()
			done := make(chan struct{})
			go func() {
				defer close(done)
				hammer(rt, mons, 3, 50)
			}()
			for {
				select {
				case <-done:
					if vs := det.CheckNow(); len(vs) != 0 {
						t.Fatalf("final check: %v", vs)
					}
					if st := det.Stats(); st.Events != int(db.Total()) {
						t.Fatalf("replayed %d events, recorded %d — events lost or duplicated",
							st.Events, db.Total())
					}
					return
				default:
					if vs := det.CheckNow(); len(vs) != 0 {
						t.Fatalf("checkpoint under load: %v", vs)
					}
				}
			}
		})
	}
}
