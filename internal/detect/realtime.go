package detect

import (
	"sync"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/pathexpr"
	"robustmon/internal/rules"
)

// RealTime is the first detection phase of §3.3: per-event checking of
// monitor procedure calling orders, applied to resource-access-right
// allocator monitors ("the execution sequence of the monitor procedures
// of the resource-access-right allocator type monitors must be kept
// correct" — the user-process-level faults induce immediate errors and
// cannot wait for the next checkpoint).
//
// RealTime wraps the history database as a monitor.Recorder: the
// instrumented primitives hand it every event synchronously, it steps
// the per-process path-expression matcher, and forwards the event to
// the wrapped recorder. Attach it with monitor.WithRecorder.
type RealTime struct {
	next monitor.Recorder

	mu       sync.Mutex
	paths    map[string]*pathexpr.Path              // per allocator monitor
	matchers map[string]map[int64]*pathexpr.Matcher // per monitor, per pid
	found    []rules.Violation
	onV      func(rules.Violation)
}

// NewRealTime wraps next with real-time calling-order checking for
// every allocator-kind monitor among specs. Non-allocator specs are
// ignored, as the paper applies this phase only to allocators.
// onViolation may be nil.
func NewRealTime(next monitor.Recorder, specs []monitor.Spec, onViolation func(rules.Violation)) (*RealTime, error) {
	rt := &RealTime{
		next:     next,
		paths:    make(map[string]*pathexpr.Path, len(specs)),
		matchers: make(map[string]map[int64]*pathexpr.Matcher, len(specs)),
		onV:      onViolation,
	}
	for _, spec := range specs {
		if spec.Kind != monitor.ResourceAllocator || spec.CallOrder == "" {
			continue
		}
		p, err := spec.Validate()
		if err != nil {
			return nil, err
		}
		rt.paths[spec.Name] = p
		rt.matchers[spec.Name] = make(map[int64]*pathexpr.Matcher, 8)
	}
	return rt, nil
}

// Append implements monitor.Recorder: it forwards to the wrapped
// recorder and checks allocator calling orders on the fly.
func (rt *RealTime) Append(e event.Event) event.Event {
	stored := rt.next.Append(e)
	if stored.Type != event.Enter {
		return stored
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.paths[stored.Monitor]
	if !ok || !p.Mentions(stored.Proc) {
		return stored
	}
	perPid := rt.matchers[stored.Monitor]
	m := perPid[stored.Pid]
	if m == nil {
		m = p.NewMatcher()
		perPid[stored.Pid] = m
	}
	atBoundary := m.AtCycleBoundary()
	if err := m.Step(stored.Proc); err != nil {
		rule, fault := rules.FD7a, faults.SelfDeadlock
		if atBoundary {
			rule, fault = rules.FD7b, faults.ReleaseWithoutAcquire
		}
		v := rules.Violation{
			Rule:    rule,
			Monitor: stored.Monitor,
			Pid:     stored.Pid,
			Proc:    stored.Proc,
			Seq:     stored.Seq,
			At:      stored.Time,
			Fault:   fault,
			Phase:   "realtime",
			Message: err.Error(),
		}
		rt.found = append(rt.found, v)
		if rt.onV != nil {
			rt.onV(v)
		}
	}
	return stored
}

// Violations returns the order violations caught so far.
func (rt *RealTime) Violations() []rules.Violation {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]rules.Violation(nil), rt.found...)
}
