package detect

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// TestPropertyNoFalsePositivesUnderRandomSchedules is the detector's
// core soundness property: whatever interleaving a fault-free workload
// takes, and wherever checkpoints land in it, no violation may be
// reported. Randomised over seeds; any failure prints the seed.
func TestPropertyNoFalsePositivesUnderRandomSchedules(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			db := history.New()
			m, err := monitor.New(monitor.Spec{
				Name: "m", Kind: monitor.OperationManager,
				Conditions: []string{"ping", "pong"},
				Procedures: []string{"Op", "Ping", "Pong"},
			}, monitor.WithRecorder(db))
			if err != nil {
				t.Fatal(err)
			}
			det := New(db, Config{
				Tmax: time.Minute, Tio: time.Minute,
				Clock: clock.Real{}, HoldWorld: true,
			}, m)

			rt := proc.NewRuntime()
			// Plain critical-section workers with random op counts.
			workers := 2 + rng.Intn(4)
			for i := 0; i < workers; i++ {
				n := 10 + rng.Intn(50)
				rt.Spawn("worker", func(p *proc.P) {
					for j := 0; j < n; j++ {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						_ = m.Exit(p, "Op")
					}
				})
			}
			// A counted ping-pong pair exercising Wait/Signal-Exit with
			// guaranteed liveness: the ponger waits only when no ping is
			// pending, the pinger signals exactly rounds times.
			rounds := 5 + rng.Intn(10)
			var mu sync.Mutex
			pending := 0
			rt.Spawn("ponger", func(p *proc.P) {
				for j := 0; j < rounds; j++ {
					if err := m.Enter(p, "Pong"); err != nil {
						return
					}
					mu.Lock()
					empty := pending == 0
					mu.Unlock()
					if empty {
						if err := m.Wait(p, "Pong", "ping"); err != nil {
							return
						}
					}
					mu.Lock()
					pending--
					mu.Unlock()
					_ = m.Exit(p, "Pong")
				}
			})
			rt.Spawn("pinger", func(p *proc.P) {
				for j := 0; j < rounds; j++ {
					if err := m.Enter(p, "Ping"); err != nil {
						return
					}
					mu.Lock()
					pending++
					mu.Unlock()
					_ = m.SignalExit(p, "Ping", "ping")
				}
			})
			// Checkpoints land at random instants while the workload runs.
			stop := make(chan struct{})
			var checker sync.WaitGroup
			checker.Add(1)
			go func() {
				defer checker.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(time.Duration(rng.Intn(500)+100) * time.Microsecond):
						if vs := det.CheckNow(); len(vs) != 0 {
							t.Errorf("seed %d: mid-run violations: %v", seed, vs)
							return
						}
					}
				}
			}()
			rt.Join()
			close(stop)
			checker.Wait()
			if vs := det.CheckNow(); len(vs) != 0 {
				t.Fatalf("seed %d: final violations: %v", seed, vs)
			}
			if m.InsideCount() != 0 || m.EntryLen() != 0 ||
				m.CondLen("ping") != 0 || m.CondLen("pong") != 0 {
				t.Fatalf("seed %d: monitor not quiescent", seed)
			}
		})
	}
}

// TestPropertyMultiMonitorSharedDB: one detector and one database over
// several monitors must attribute segments correctly (no cross-monitor
// bleed) under concurrent load.
func TestPropertyMultiMonitorSharedDB(t *testing.T) {
	t.Parallel()
	db := history.New()
	var mons []*monitor.Monitor
	for _, name := range []string{"a", "b", "c"} {
		m, err := monitor.New(monitor.Spec{
			Name: name, Kind: monitor.OperationManager,
			Conditions: []string{"ok"}, Procedures: []string{"Op"},
		}, monitor.WithRecorder(db))
		if err != nil {
			t.Fatal(err)
		}
		mons = append(mons, m)
	}
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock: clock.Real{}, HoldWorld: true,
	}, mons...)

	rt := proc.NewRuntime()
	for i := 0; i < 6; i++ {
		i := i
		rt.Spawn("worker", func(p *proc.P) {
			for j := 0; j < 100; j++ {
				m := mons[(i+j)%len(mons)]
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
	}
	done := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-done:
				return
			default:
				if vs := det.CheckNow(); len(vs) != 0 {
					t.Errorf("mid-run violations: %v", vs)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	rt.Join()
	close(done)
	checker.Wait()
	if vs := det.CheckNow(); len(vs) != 0 {
		t.Fatalf("final violations: %v", vs)
	}
	st := det.Stats()
	if st.Events != 1200 {
		t.Fatalf("detector replayed %d events, want 1200 (6 workers × 100 ops × 2 events)", st.Events)
	}
}
