package detect

// Shard-local online recovery: resetting one faulty monitor without
// stopping the world.
//
// The recovery policies (internal/recovery) used to call
// monitor.Reset directly, which is only safe while a hold-world
// checkpoint has the whole system stopped — exactly the coordination
// the per-monitor checkpoint mode was built to avoid. The detector is
// the one component that already linearises everything touching a
// monitor's checkpoint state (snapshots, shard drains, batched
// replays, checking-list seeds), so the online reset lives here:
// RequestReset enqueues, and the reset is applied under the checkpoint
// lock at a checkpoint boundary — freeze only the offending monitor,
// discard its buffered history, reinitialise monitor + checking state
// + scheduler state, emit a recovery marker, thaw. Every other monitor
// keeps recording, checkpointing and exporting throughout.

import (
	"robustmon/internal/checklists"
	"robustmon/internal/history"
	"robustmon/internal/rules"
)

// resetReq is one queued shard-local reset: the monitor to reset and
// the violation that demanded it (carried into the recovery marker).
type resetReq struct {
	name string
	v    rules.Violation
}

// RequestReset schedules a shard-local online reset of the named
// monitor and reports whether the monitor is covered by this detector.
// recovery.Manager routes its ResetMonitor policy here (it implements
// recovery.Resetter), but the method is ordinary public API.
//
// The reset itself is applied under the checkpoint lock, never inside
// a checkpoint: a request made from an OnViolation callback (the
// periodic phase calls it synchronously mid-checkpoint) is applied
// before that checkpoint returns, and a request made from anywhere
// else — including the real-time checker's callback, which runs inside
// the faulty monitor's own critical section — is applied by a detached
// goroutine as soon as the lock is free. That indirection is what
// fences the reset against an in-flight adaptive/batched checkpoint on
// the same shard: the checkpoint fixed its horizon under the monitor's
// freeze, and the reset can only run after that checkpoint (and its
// batched drains) fully completed, taking a fresh horizon of its own.
//
// What one applied reset does, with only the offending monitor frozen:
//
//   - history.DB.ResetMonitor discards the shard's buffered unchecked
//     events (they are not exported — the marker records the gap) and
//     restarts the per-monitor rate counter;
//   - monitor.ResetFrozen clears the queues and the inside set,
//     restores R#, and aborts the parked processes;
//   - the monitor's checking state is reseeded from a fresh post-reset
//     snapshot (previous snapshot, cumulative send/receive counts,
//     request list);
//   - the adaptive scheduler re-arms the monitor at Tmin with its rate
//     history cleared (sched.Reset);
//   - a history.RecoveryMarker is emitted through Config.Exporter's
//     ConsumeMarker when an exporter is wired.
//
// Duplicate requests for the same monitor that are pending together
// coalesce into a single reset.
func (d *Detector) RequestReset(name string, v rules.Violation) bool {
	if _, ok := d.byName[name]; !ok {
		return false
	}
	d.resetMu.Lock()
	d.resetQ = append(d.resetQ, resetReq{name: name, v: v})
	d.resetMu.Unlock()
	// Apply on a detached goroutine: the caller may be inside the
	// faulty monitor's critical section (real-time phase) or inside the
	// checkpoint that found the violation (periodic phase), and the
	// reset must freeze the monitor and take the checkpoint lock —
	// either would self-deadlock inline. The goroutine blocks for the
	// lock rather than trying it, so a request that races any other
	// lock holder (a checkpoint, Stats, Violations) is applied the
	// moment that holder releases — it can never strand in the queue.
	// When the checkpoint that found the violation drains the queue at
	// its own boundary first, the goroutine simply finds it empty.
	go func() {
		d.mu.Lock()
		d.applyResetsLocked()
		d.mu.Unlock()
	}()
	return true
}

// applyResetsLocked drains the reset queue and applies each reset,
// coalescing duplicate monitors. Caller holds d.mu.
func (d *Detector) applyResetsLocked() {
	for {
		d.resetMu.Lock()
		q := d.resetQ
		d.resetQ = nil
		d.resetMu.Unlock()
		if len(q) == 0 {
			return
		}
		done := make(map[string]bool, len(q))
		for _, r := range q {
			if done[r.name] {
				continue
			}
			done[r.name] = true
			d.resetOneLocked(r)
		}
	}
}

// resetOneLocked performs one shard-local reset. Caller holds d.mu, so
// no checkpoint is in flight; only the offending monitor is frozen,
// and only for the duration of the state surgery — the drained-and-
// replayed history of every other monitor is untouched.
func (d *Detector) resetOneLocked(r resetReq) {
	i, ok := d.byName[r.name]
	if !ok {
		return
	}
	ms := d.mons[i]
	now := d.cfg.Clock.Now()

	ms.mon.Freeze()
	// The horizon is fixed under the freeze: every event this monitor
	// ever recorded has Seq ≤ horizon, and everything it records after
	// the thaw is beyond it — the same fencing a batched checkpoint
	// uses, now marking the boundary between the monitor's two lives.
	horizon := d.db.LastSeq()
	dropped := d.db.ResetMonitor(r.name)
	parked := ms.mon.ResetFrozen()
	snap := ms.mon.Snapshot().Clone()
	snap.LastSeq = horizon
	d.db.AppendState(snap)
	ms.mon.Thaw()
	for _, p := range parked {
		p.Abort()
	}

	// Reseed the cross-checkpoint checking state from the post-reset
	// snapshot: the next checkpoint replays only events of the fresh
	// life against a base that matches it.
	ms.prev = snap
	ms.tot = counts{}
	ms.rl = checklists.NewRequestList(ms.mon.Spec())
	if d.sched != nil {
		d.sched.Reset(r.name, now)
	}

	d.stats.Resets++
	d.stats.ResetDropped += dropped
	d.met.resets.Inc()
	d.met.resetDropped.Add(int64(dropped))
	if d.cfg.Exporter != nil {
		d.cfg.Exporter.ConsumeMarker(history.RecoveryMarker{
			Monitor: r.name,
			Horizon: horizon,
			Dropped: dropped,
			Rule:    string(r.v.Rule),
			Pid:     r.v.Pid,
			At:      now,
		})
	}
}
