package detect

import (
	"fmt"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

// The batching flush handshake: monitors recording through
// BatchWriters stage events in lock-free local buffers, and the
// detector must publish those buffers at every checkpoint — while the
// monitors are frozen, which is the happens-before edge making the
// cross-goroutine flush safe — or a checkpoint would replay a
// truncated history. These tests pin that handshake in both
// checkpoint modes: every recorded event reaches the checkpoint even
// when the batch size is far larger than the workload, so nothing
// would ever flush on its own.

func batchFixture(t *testing.T, holdWorld bool, monitors int) (*history.DB, []*monitor.Monitor, *Detector, *proc.Runtime) {
	t.Helper()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	mons := make([]*monitor.Monitor, monitors)
	for i := range mons {
		spec := monitor.Spec{
			Name: fmt.Sprintf("m%d", i), Kind: monitor.OperationManager,
			Conditions: []string{"ok"},
		}
		// Batch far larger than the workload: without the checkpoint
		// handshake not a single event would be published.
		m, err := monitor.New(spec,
			monitor.WithRecorder(db.NewBatchWriter(spec.Name, 4096)),
			monitor.WithClock(clk),
		)
		if err != nil {
			t.Fatalf("monitor.New: %v", err)
		}
		mons[i] = m
	}
	cfg := Config{Tmax: time.Minute, Tio: time.Minute, Clock: clk, HoldWorld: holdWorld}
	return db, mons, New(db, cfg, mons...), proc.NewRuntime()
}

func TestCheckpointFlushesBatchWriters(t *testing.T) {
	t.Parallel()
	for _, holdWorld := range []bool{true, false} {
		holdWorld := holdWorld
		name := "per-monitor"
		if holdWorld {
			name = "hold-world"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const monitors, opsPerMonitor = 3, 5
			db, mons, det, rt := batchFixture(t, holdWorld, monitors)
			for _, m := range mons {
				m := m
				for op := 0; op < opsPerMonitor; op++ {
					rt.Spawn("w", func(p *proc.P) {
						if err := m.Enter(p, "Op"); err != nil {
							return
						}
						_ = m.Exit(p, "Op")
					})
					rt.Join() // serial ops: deterministic event count
				}
			}
			// Enter + Exit record 2 events per op; all of them are still
			// staged (batch 4096 never fills).
			want := monitors * opsPerMonitor * 2
			if got := db.Total(); got != 0 {
				t.Fatalf("events published before checkpoint: total = %d", got)
			}
			if vs := det.CheckNow(); len(vs) != 0 {
				t.Fatalf("clean workload produced violations: %v", vs)
			}
			if got := det.Stats().Events; got != want {
				t.Fatalf("checkpoint replayed %d events, want %d — the flush handshake missed staged writers", got, want)
			}
			if got := db.Total(); int(got) != want {
				t.Fatalf("published %d events, want %d", got, want)
			}
			// A second checkpoint sees nothing new.
			det.CheckNow()
			if got := det.Stats().Events; got != want {
				t.Fatalf("idle checkpoint replayed events: %d, want %d", got, want)
			}
		})
	}
}

// TestPerMonitorFlushLeavesOtherWritersAlone pins the targeted half of
// the handshake: a per-monitor checkpoint of monitor A must not reach
// into monitor B's writer (B's producer may be live — flushing it from
// the checkpoint goroutine would race). The detector checks every
// monitor at CheckNow, so the pin drives the history-layer API the way
// the per-monitor path does.
func TestPerMonitorFlushLeavesOtherWritersAlone(t *testing.T) {
	t.Parallel()
	db := history.New()
	clk := clock.NewVirtual(epoch)
	spec := monitor.Spec{Name: "a", Kind: monitor.OperationManager, Conditions: []string{"ok"}}
	wa := db.NewBatchWriter("a", 4096)
	m, err := monitor.New(spec, monitor.WithRecorder(wa), monitor.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	wb := db.NewBatchWriter("b", 4096)
	wb.Append(event.Event{Monitor: "b", Type: event.Enter, Pid: 1, Proc: "Op", Time: epoch})
	rt := proc.NewRuntime()
	rt.Spawn("w", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	rt.Join()

	m.Freeze()
	db.FlushMonitorWriters(m.Name())
	m.Thaw()
	if got := wa.Pending(); got != 0 {
		t.Fatalf("frozen monitor's writer not flushed: pending = %d", got)
	}
	if got := wb.Pending(); got != 1 {
		t.Fatalf("unrelated writer flushed by a per-monitor checkpoint: pending = %d", got)
	}
	wb.Close()
}
