// Package detect implements the invisible part of the augmented
// monitor construct: the periodic checking routine running Algorithm-1
// (general concurrency-control checking), Algorithm-2 (consistency of
// resource states) and Algorithm-3 (calling orders), plus the
// real-time calling-order checker for resource-allocator monitors
// (§3.3 — "Our fault detection strategy includes two phases: real-time
// checking of calling orders … and periodical checking of other
// errors").
//
// Checkpoints run as a parallel pipeline over the sharded history
// database: each monitor's freeze → snapshot → drain-own-shard →
// replay → thaw is independent work, distributed across a bounded
// worker pool. Two modes exist. HoldWorld (the paper-faithful default)
// is a two-phase barrier: phase one freezes every monitored monitor
// and takes all snapshots and shard drains while the world is stopped,
// phase two replays the per-monitor segments in parallel before
// thawing, so the checkpoint observes one consistent global state
// exactly as §4 prescribes. With HoldWorld off, each monitor is
// frozen, snapshotted, drained and thawed individually and never stops
// an unrelated monitor — the cheap mode for many-monitor workloads.
// Timers (Tmax, Tio, Tlimit) close the gap for faults whose only
// symptom is that nothing happens. See DESIGN.md for the architecture.
//
// Two scaling controls sit on top of the pipeline. Batched replay
// (Config.BatchSize) drains and replays each monitor's segment in
// fixed-size batches with the checking-list seeding paid once per
// checkpoint, so a shard that buffered a million events no longer
// stalls its checkpoint on one giant drain — and in per-monitor mode
// the monitor is frozen only long enough to fix the checkpoint
// horizon, with the whole replay running while it keeps executing.
// Adaptive scheduling (Config.MinInterval/MaxInterval, package sched)
// replaces the single fixed checking interval with a per-monitor
// effective interval driven by observed per-shard event rates: hot
// monitors are checked often enough that their segments stay near
// Config.TargetBatch events, idle monitors back off toward
// MaxInterval. Both controls are detection-equivalent to the fixed-T
// serial path: the same events replay through the same seeded lists,
// so the violation set is identical (pinned by TestBatchedAdaptive-
// Equivalence).
package detect

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"robustmon/internal/checklists"
	"robustmon/internal/clock"
	"robustmon/internal/detect/sched"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

// Config parameterises the detector.
type Config struct {
	// Interval is the checking period T. Tmax < T should hold for the
	// timers to be meaningful (§3.3). Used by Run; CheckNow ignores it.
	Interval time.Duration
	// Tmax is the longest a process may stay inside a monitor or on a
	// condition queue (ST-5). Zero disables.
	Tmax time.Duration
	// Tio is the starvation timeout for the entry queue (ST-6). Zero
	// disables.
	Tio time.Duration
	// Tlimit is the longest a process may hold an allocated resource
	// (ST-8c). Zero disables.
	Tlimit time.Duration
	// Clock is the time source (default: wall clock).
	Clock clock.Clock
	// HoldWorld keeps every monitor frozen for the whole check, exactly
	// as the paper's prototype suspends all processes during checking.
	// When false, each monitor is frozen only while its own snapshot and
	// shard drain are taken, and unrelated monitors never stop (the
	// cheaper variant measured by the ablation benchmarks). Default true
	// via New.
	HoldWorld bool
	// Workers bounds the checkpoint worker pool: how many monitors are
	// checked concurrently within one checkpoint. Zero means
	// min(GOMAXPROCS, number of monitors); 1 reproduces the serial
	// checking order exactly.
	Workers int
	// OnViolation, when set, is called synchronously for each violation
	// as it is found.
	OnViolation func(rules.Violation)
	// Extra checkers run at every checkpoint while the world is frozen;
	// the assertion sets of the §5 extension plug in here.
	Extra []Checker
	// Exporter, when set, receives every record the detector produces:
	// New adds its Consume as a drain tee (additive, so detectors
	// sharing a database never unwire each other), shard-local resets
	// send their recovery markers through ConsumeMarker, the health
	// cadence (HealthEvery) sends snapshots through ConsumeHealth, and
	// Run flushes it after the final checkpoint so the exported trace
	// covers the whole run. This is the streaming replacement for
	// history.WithFullTrace — offline tooling replays the exporter's
	// sink instead of an in-memory full trace.
	Exporter TraceExporter
	// BatchSize, when positive, drains and replays checkpoint segments
	// in batches of this many events instead of one drain per monitor:
	// the checking lists are seeded once per checkpoint and each batch
	// replays incrementally, so worst-case checkpoint latency is bounded
	// by the batch size rather than by how much a shard buffered. In
	// per-monitor mode the monitor is frozen only while the checkpoint
	// horizon is fixed; the drains and the replay run while it keeps
	// executing. Zero keeps the single-drain path. The violation set is
	// unchanged either way; only WAL record framing (one record per
	// drained batch) differs.
	BatchSize int
	// MaxInterval, when positive, switches Run to the adaptive
	// scheduler (package sched): each monitor gets its own effective
	// checking interval in [MinInterval, MaxInterval], derived from its
	// observed event rate, instead of the single fixed Interval. Hot
	// monitors are checked more often (their interval aims their
	// segment size at TargetBatch events); idle monitors back off
	// toward MaxInterval, which is therefore the worst-case detection
	// latency for periodic-phase faults. CheckNow still checks every
	// monitor on demand.
	MaxInterval time.Duration
	// MinInterval is the adaptive scheduler's floor (its Tmin): no
	// monitor is checked more often than this. Zero falls back to
	// Interval, then to 1ms.
	MinInterval time.Duration
	// TargetBatch is the per-checkpoint segment size (events) the
	// adaptive scheduler tunes each monitor's interval toward. Zero
	// means BatchSize when set, else sched.DefaultTargetBatch.
	TargetBatch int
	// Obs, when set, instruments the detector on the registry (see
	// obs.go): checkpoint/freeze latency histograms, check, replay,
	// violation and reset counters, and per-monitor interval gauges
	// when the adaptive scheduler is on. It is also the registry
	// HealthEvery snapshots are captured from. Nil disables at zero
	// cost (Stats.CheckP50/CheckP99 still work — the latency histogram
	// is kept standalone).
	Obs *obs.Registry
	// HealthEvery, when positive (and Obs and Exporter are both
	// set), captures the registry as a health
	// snapshot at the first checkpoint boundary after each elapsed
	// period and sends it through the exporter, so the export WAL
	// carries a health timeline alongside the trace. Zero disables.
	HealthEvery time.Duration
	// Rules are threshold rules the detector evaluates over its own
	// registry at the health cadence (internal/obs/rules): each health
	// snapshot is shared between the exported health record and one
	// Engine.Eval pass, so watching the watcher costs one extra linear
	// scan per emission, nothing per event. A rule crossing into the
	// firing state is persisted as a WAL alert record (ConsumeAlert)
	// and raised as a synthetic meta-violation (rules.Meta, Phase
	// "meta") through the ordinary found/OnViolation path; a rule with
	// ResetMonitor set additionally drives a shard-local RequestReset.
	// Clears are persisted but raise no violation. Rules need the same
	// three legs as health emission — Obs, Exporter and HealthEvery —
	// and are ignored without them. New panics on an invalid rule set
	// (duplicate or unnamed rules), like any other static-config
	// programming error.
	Rules []obsrules.Rule
	// SuspendOverhead simulates the fixed per-checkpoint cost of the
	// paper's prototype, whose checking routine suspended every user
	// process via 2001-era JVM thread suspension — a platform cost that
	// does not exist on a modern Go runtime (our Freeze is microseconds).
	// When positive and HoldWorld is set, the detector stalls this long
	// at each checkpoint while the world is frozen. Zero (the default)
	// measures the native cost. Used by the E2 experiment to reproduce
	// Table 1's interval-dependence; see DESIGN.md §6.
	SuspendOverhead time.Duration
}

// Checker is an additional checkpoint-time check (e.g. a user-supplied
// assertion set from internal/assert).
type Checker interface {
	// Check evaluates at instant now and returns any violations.
	Check(now time.Time) []rules.Violation
}

// TraceExporter is the detector's view of the async trace-export
// pipeline (internal/export.Exporter implements it; the indirection
// keeps detect free of an export dependency). Its methods mirror the
// three WAL record kinds, so the dispatch is by record kind at the
// seam instead of by type assertion behind it: Consume receives
// drained segments (it matches history.DrainTee), ConsumeMarker the
// recovery markers of shard-local resets, ConsumeHealth the periodic
// health snapshots, and Flush forces everything consumed so far to
// the sink.
//
// This seam used to be three interfaces — SegmentExporter with
// optional MarkerExporter/HealthExporter extensions discovered by
// type sniffing — which meant a sink could silently lose markers or
// health records by not implementing an extension it never heard of.
// One interface makes the full record surface explicit; exporters
// that genuinely ignore a record kind implement it with a no-op.
type TraceExporter interface {
	// Consume accepts one drained per-monitor segment (the
	// history.DrainTee signature).
	Consume(monitor string, seg event.Seq)
	// ConsumeMarker accepts the recovery marker of one shard-local
	// online reset.
	ConsumeMarker(m history.RecoveryMarker)
	// ConsumeHealth accepts one periodic health snapshot.
	ConsumeHealth(h obs.HealthRecord)
	// ConsumeAlert accepts one threshold-rule transition (fire or
	// clear) from the detector's self-watching rules (Config.Rules).
	ConsumeAlert(a obsrules.Alert)
	// Flush forces everything consumed so far to the sink.
	Flush() error
}

// SegmentExporter is the segment-and-flush subset of the old
// three-interface exporter seam.
//
// Deprecated: Config.Exporter now requires the full TraceExporter.
// The name remains so older call sites that merely reference the
// interface keep compiling; implement TraceExporter (with no-op
// ConsumeMarker/ConsumeHealth if markers and health snapshots are
// irrelevant to the sink).
type SegmentExporter interface {
	Consume(monitor string, seg event.Seq)
	Flush() error
}

// MarkerExporter is the old optional extension through which recovery
// markers reached the export stream.
//
// Deprecated: ConsumeMarker is part of TraceExporter; the detector no
// longer type-sniffs for this interface.
type MarkerExporter interface {
	ConsumeMarker(history.RecoveryMarker)
}

// counts carries the cumulative r/s counters of one coordinator across
// checkpoints.
type counts struct{ sends, recvs int }

// monState is the per-monitor checking state carried across
// checkpoints. Each monitor has exactly one monState, and within a
// checkpoint exactly one worker touches it, so no lock is needed
// beyond the checkpoint barrier itself.
type monState struct {
	mon  *monitor.Monitor
	prev state.Snapshot
	tot  counts
	rl   *checklists.RequestList
}

// Detector is the periodic checking routine. Construct with New; all
// methods are safe for concurrent use, though checkpoints themselves
// are serialised (the worker pool parallelises within a checkpoint).
type Detector struct {
	cfg   Config
	db    *history.DB
	sched *sched.Scheduler // nil unless cfg.MaxInterval > 0
	// byName maps monitor name → d.mons index; fixed at construction,
	// used by every adaptive checkpoint to translate due names.
	byName map[string]int
	// monNames lists this detector's monitors — the set a hold-world
	// checkpoint freezes, and so the set whose batch writers the flush
	// handshake publishes. Fixed at construction.
	monNames []string

	// met are the obs handles (see obs.go); met.checkNs is live even
	// without Config.Obs, backing Stats.CheckP50/CheckP99. health is
	// Config.Exporter when health emission is on (nil otherwise);
	// lastHealth is the cadence anchor, guarded by mu like the rest of
	// the checkpoint state.
	met    detMetrics
	health TraceExporter
	// rules is the self-watching threshold engine (nil unless
	// Config.Rules and the health legs are all configured); resetFor
	// maps a rule name to its ResetMonitor target, and alertBuf is the
	// reused Eval destination keeping the no-transition path
	// allocation-free. All guarded by mu like the rest of the
	// checkpoint state.
	rules    *obsrules.Engine
	resetFor map[string]string
	alertBuf []obsrules.Alert

	mu         sync.Mutex
	mons       []*monState
	found      []rules.Violation
	stats      Stats
	lastHealth time.Time

	// resetMu guards the queue of pending shard-local recovery resets;
	// they are applied under d.mu at checkpoint boundaries (see
	// RequestReset in recovery.go).
	resetMu sync.Mutex
	resetQ  []resetReq
}

// Stats summarises detector activity (used by the overhead benches).
type Stats struct {
	// Checks is the number of completed checkpoints.
	Checks int
	// Events is the number of events replayed.
	Events int
	// Violations is the number of violations found (periodic and meta
	// phases).
	Violations int
	// FrozenFor is the cumulative wall time monitors were held frozen:
	// in hold-world mode the whole checkpoint duration (the world is
	// stopped throughout), in per-monitor mode the sum of the
	// individual freeze windows — which batching shrinks to the
	// horizon fix, and which this metric exists to show.
	FrozenFor time.Duration
	// CheckP50 and CheckP99 are percentile checkpoint latencies — the
	// perf-gate signal for "a huge shard no longer stalls a
	// checkpoint". Zero until the first checkpoint completes.
	//
	// Since the obs subsystem landed they are computed from the
	// detect_check_ns histogram (power-of-two buckets, interpolated
	// within the matched bucket — exact to a factor of two) over the
	// whole run, not from the old exact 4096-checkpoint ring. The
	// field surface is kept for compatibility; consumers needing
	// full bucket resolution should read the histogram through
	// Config.Obs instead.
	CheckP50, CheckP99 time.Duration
	// Resets is the number of shard-local recovery resets applied
	// (RequestReset), and ResetDropped the total buffered events those
	// resets discarded unreplayed. Checks keeps advancing while resets
	// are applied — that progress is how tests observe that recovery
	// never stops the world.
	Resets, ResetDropped int
}

// New builds a detector over the given history database and monitors,
// and takes the initial checkpoint snapshots. Create the detector
// before starting the workload so the first segment is anchored at a
// known state. Checkpoints drain only the shards of the monitors
// given here: a monitor recording into db but listed with no detector
// keeps buffering its events (see history.DB.DrainMonitor), so every
// recording monitor should be covered by some detector.
func New(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	d := &Detector{
		cfg:  cfg,
		db:   db,
		mons: make([]*monState, 0, len(mons)),
	}
	if cfg.Exporter != nil {
		// Checkpoints now feed the export pipeline for free: every
		// drained segment is teed to the exporter. Added, not set, so
		// detectors sharing one database never unwire each other's
		// exporters — each added exporter observes the whole drain
		// stream.
		db.AddDrainTee(cfg.Exporter.Consume)
	}
	d.byName = make(map[string]int, len(mons))
	for _, m := range mons {
		m.Freeze()
		prev := m.Snapshot().Clone()
		m.Thaw()
		d.byName[m.Name()] = len(d.mons)
		d.monNames = append(d.monNames, m.Name())
		d.mons = append(d.mons, &monState{
			mon:  m,
			prev: prev,
			rl:   checklists.NewRequestList(m.Spec()),
		})
	}
	if cfg.MaxInterval > 0 {
		tmin := cfg.MinInterval
		if tmin <= 0 {
			tmin = cfg.Interval
		}
		target := cfg.TargetBatch
		if target <= 0 {
			target = cfg.BatchSize
		}
		d.sched = sched.New(sched.Config{
			Tmin:        tmin,
			Tmax:        cfg.MaxInterval,
			TargetBatch: target,
		})
		now := cfg.Clock.Now()
		for _, ms := range d.mons {
			d.sched.Add(ms.mon.Name(), now)
		}
	}
	d.met = newDetMetrics(cfg.Obs, d.monNames, d.sched != nil)
	if cfg.HealthEvery > 0 && cfg.Obs != nil && cfg.Exporter != nil {
		// Health emission needs all three legs: a cadence, a registry to
		// snapshot, and an exporter to carry the record — no type sniff:
		// ConsumeHealth is part of the TraceExporter contract.
		d.health = cfg.Exporter
	}
	if len(cfg.Rules) > 0 && d.health != nil {
		eng, err := obsrules.New(cfg.Obs, cfg.Rules...)
		if err != nil {
			// Static config, programming error: fail loudly at
			// construction rather than silently not watching.
			panic("detect: invalid Config.Rules: " + err.Error())
		}
		d.rules = eng
		d.resetFor = make(map[string]string, len(cfg.Rules))
		for _, r := range cfg.Rules {
			if r.ResetMonitor != "" {
				d.resetFor[r.Name] = r.ResetMonitor
			}
		}
	}
	return d
}

// NewDefault is New with the paper-faithful HoldWorld behaviour.
func NewDefault(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	cfg.HoldWorld = true
	return New(db, cfg, mons...)
}

// workers returns the effective checkpoint pool size for n selected
// monitors.
func (d *Detector) workers(n int) int {
	w := d.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CheckNow runs one checkpoint (all three algorithms) over every
// monitor and returns the violations found at this checkpoint.
// Violations are reported in monitor order regardless of worker
// scheduling, so the parallel pipeline yields the same violation set
// (and order) as a serial pass.
func (d *Detector) CheckNow() []rules.Violation {
	sel := make([]int, len(d.mons))
	for i := range sel {
		sel[i] = i
	}
	return d.checkSubset(sel)
}

// checkNames runs one checkpoint over the named monitors — the
// adaptive scheduler's entry point, where only the monitors that are
// due get checked. Unknown names are ignored.
func (d *Detector) checkNames(names []string) []rules.Violation {
	sel := make([]int, 0, len(names))
	for _, name := range names {
		if i, ok := d.byName[name]; ok {
			sel = append(sel, i)
		}
	}
	sort.Ints(sel) // monitor order, whatever order the names came in
	return d.checkSubset(sel)
}

// checkSubset runs one checkpoint over the selected monitor indices.
// It is the single checkpoint implementation behind CheckNow (all
// monitors) and the adaptive scheduler (the due subset). Pending
// shard-local recovery resets (RequestReset) are applied at both
// checkpoint boundaries while the checkpoint lock is held — never
// inside the checkpoint — so a reset can never interleave with an
// in-flight snapshot, drain or batched replay of the same shard.
func (d *Detector) checkSubset(sel []int) []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applyResetsLocked()
	out := d.checkSubsetLocked(sel)
	// A violation found by this checkpoint reaches OnViolation (and so
	// a recovery manager) synchronously above; its reset request lands
	// here, before the checkpoint returns. Requests enqueued after
	// this drain are picked up by their own detached goroutines (see
	// RequestReset) as soon as the lock frees.
	d.applyResetsLocked()
	// Health snapshots interleave with checkpoints, never run inside
	// one — captured here the record also reflects this checkpoint's
	// own counters. The same snapshot feeds the self-watching rules,
	// whose firing transitions may enqueue further resets …
	d.maybeEmitHealthLocked()
	// … which this final drain applies, so a rule-driven reset lands
	// before the checkpoint that fired it returns, same as one
	// requested from OnViolation.
	d.applyResetsLocked()
	return out
}

// checkSubsetLocked is checkSubset's body; the caller holds d.mu.
func (d *Detector) checkSubsetLocked(sel []int) []rules.Violation {
	start := d.cfg.Clock.Now()
	perMon := make([][]rules.Violation, len(sel))
	events := make([]int, len(sel))

	if d.cfg.HoldWorld {
		// Two-phase barrier (§4): stop the whole world — every monitor,
		// selected or not, so the checkpoint observes one consistent
		// global state — and capture the selected snapshots against it …
		for _, ms := range d.mons {
			ms.mon.Freeze()
		}
		// Flush-on-checkpoint handshake: monitors publishing through
		// batch writers may hold recorded-but-unpublished events in
		// writer-local buffers. The monitors are frozen — nothing new
		// can be staged, and the freeze is the happens-before edge that
		// makes reading their writers safe — so publishing the
		// stragglers here, before the horizon is fixed, makes the
		// checkpoint observe exactly the events a serial (unbatched)
		// record path would have published.
		d.db.FlushMonitorWriters(d.monNames...)
		lastSeq := d.db.LastSeq()
		snaps := make([]state.Snapshot, len(sel))
		for k, i := range sel {
			snap := d.mons[i].mon.Snapshot().Clone()
			snap.LastSeq = lastSeq
			snaps[k] = snap
			// §4: the database keeps the checkpoint states alongside the
			// event sequence (retained only in full-trace configurations).
			d.db.AppendState(snap)
		}
		now := d.cfg.Clock.Now()
		if d.cfg.BatchSize > 0 {
			// Batched: each worker drains its monitor's shard in bounded
			// slices up to the frozen horizon and replays as it goes; the
			// checking-list seeding is paid once per monitor, not once
			// per batch.
			d.runPool(len(sel), func(k int) {
				ms := d.mons[sel[k]]
				perMon[k], events[k] = d.replayMonitor(ms,
					d.batchDrain(ms.mon.Name(), lastSeq), snaps[k], now)
			})
		} else {
			// Single-drain: capture every segment while the world is
			// stopped, then replay through the worker pool while the
			// world is still held, as the paper's prototype does.
			segs := make([]event.Seq, len(sel))
			for k, i := range sel {
				segs[k] = d.db.DrainMonitor(d.mons[i].mon.Name())
			}
			d.runPool(len(sel), func(k int) {
				perMon[k], events[k] = d.replayMonitor(d.mons[sel[k]],
					drainOnce(segs[k]), snaps[k], now)
			})
		}
		// Extras run while the world is still frozen, as before.
		for _, extra := range d.cfg.Extra {
			perMon = append(perMon, extra.Check(now))
		}
		if d.cfg.SuspendOverhead > 0 {
			// Simulated platform suspension cost (see Config.SuspendOverhead).
			// Real sleep, deliberately not the configured clock: this models
			// wall-clock stall of the frozen world.
			time.Sleep(d.cfg.SuspendOverhead)
		}
		for _, ms := range d.mons {
			ms.mon.Thaw()
		}
	} else {
		// Per-monitor mode: each worker freezes only its own monitor and
		// never stops an unrelated one. Unbatched, the freeze covers the
		// snapshot and the whole drain; batched, it covers only fixing
		// the checkpoint horizon — the drains and the replay run while
		// the monitor keeps executing, since events recorded after the
		// thaw carry sequence numbers beyond the horizon and stay
		// buffered for the next checkpoint.
		now := d.cfg.Clock.Now()
		frozen := make([]time.Duration, len(sel))
		d.runPool(len(sel), func(k int) {
			ms := d.mons[sel[k]]
			ms.mon.Freeze()
			// Same flush-on-checkpoint handshake as hold-world mode,
			// scoped to the one monitor this worker froze: its writers
			// are quiescent behind the freeze, so the flush publishes
			// every event it recorded before this checkpoint's horizon is
			// fixed below. Other monitors' writers stay untouched — their
			// producers may be live, and their events are not this
			// checkpoint's business.
			d.db.FlushMonitorWriters(ms.mon.Name())
			t0 := d.cfg.Clock.Now()
			snap := ms.mon.Snapshot().Clone()
			var drain func() (event.Seq, bool)
			if d.cfg.BatchSize > 0 {
				horizon := d.db.LastSeq()
				snap.LastSeq = horizon
				d.db.AppendState(snap)
				frozen[k] = d.cfg.Clock.Now().Sub(t0)
				ms.mon.Thaw()
				drain = d.batchDrain(ms.mon.Name(), horizon)
			} else {
				seg := d.db.DrainMonitor(ms.mon.Name())
				snap.LastSeq = ms.prev.LastSeq
				if n := len(seg); n > 0 {
					snap.LastSeq = seg[n-1].Seq
				}
				d.db.AppendState(snap)
				frozen[k] = d.cfg.Clock.Now().Sub(t0)
				ms.mon.Thaw()
				drain = drainOnce(seg)
			}
			perMon[k], events[k] = d.replayMonitor(ms, drain, snap, now)
		})
		for _, f := range frozen {
			d.stats.FrozenFor += f
			d.met.freezeNs.Observe(f.Nanoseconds())
		}
		// Duplicated rather than hoisted below the if/else: the HoldWorld
		// branch must run extras before thawing, this one has no frozen
		// world to order against.
		for _, extra := range d.cfg.Extra {
			perMon = append(perMon, extra.Check(now))
		}
	}

	var out []rules.Violation
	for _, vs := range perMon {
		out = append(out, vs...)
	}
	for _, n := range events {
		d.stats.Events += n
		d.met.eventsReplayed.Add(int64(n))
	}
	elapsed := d.cfg.Clock.Now().Sub(start)
	if d.cfg.HoldWorld {
		// The world was stopped for the whole checkpoint; per-monitor
		// mode accumulated its individual freeze windows above.
		d.stats.FrozenFor += elapsed
		d.met.freezeNs.Observe(elapsed.Nanoseconds())
	}
	d.met.checkNs.Observe(elapsed.Nanoseconds())
	d.met.checks.Inc()
	d.met.violations.Add(int64(len(out)))
	d.stats.Checks++
	d.stats.Violations += len(out)
	for i := range out {
		out[i].Phase = "periodic"
		d.found = append(d.found, out[i])
		if d.cfg.OnViolation != nil {
			d.cfg.OnViolation(out[i])
		}
	}
	return out
}

// batchDrain returns a drain function pulling the named monitor's
// buffered events up to the checkpoint horizon in Config.BatchSize
// slices.
func (d *Detector) batchDrain(name string, horizon int64) func() (event.Seq, bool) {
	return func() (event.Seq, bool) {
		return d.db.DrainMonitorUpTo(name, horizon, d.cfg.BatchSize)
	}
}

// drainOnce adapts a pre-drained segment to the drain-function shape
// used by replayMonitor: one batch, nothing more.
func drainOnce(seg event.Seq) func() (event.Seq, bool) {
	return func() (event.Seq, bool) { return seg, false }
}

// runPool applies fn to every index in [0, n) through the bounded
// worker pool and waits for all of them. fn for different indices runs
// concurrently; each index runs exactly once.
func (d *Detector) runPool(n int, fn func(k int)) {
	if n == 0 {
		return
	}
	w := d.workers(n)
	if w == 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
}

// replayMonitor runs Algorithms 1–3 for one monitor's segment —
// delivered by drain in one or more batches — and advances its
// cross-checkpoint state. The checking lists are seeded once from the
// previous snapshot and replay every batch incrementally (the
// amortised-seeding half of batched checkpoints). Within a checkpoint
// it is called by exactly one worker per monitor; the checkpoint
// barrier in checkSubset orders these calls across checkpoints.
func (d *Detector) replayMonitor(ms *monState, drain func() (event.Seq, bool), cur state.Snapshot, now time.Time) ([]rules.Violation, int) {
	spec := ms.mon.Spec()

	// Algorithm-1 Step 1 (+ Algorithm-2 Step 1 for coordinators): seed
	// from the previous snapshot and replay the segment batch by batch.
	lists := checklists.FromSnapshot(spec, ms.prev, ms.tot.sends, ms.tot.recvs)
	var out []rules.Violation
	events := 0
	for {
		seg, more := drain()
		if spec.Kind == monitor.ResourceAllocator {
			// The request list interleaves its findings with replay, so
			// allocators step event by event.
			for _, e := range seg {
				lists.Apply(e)
				out = append(out, ms.rl.Apply(e)...)
			}
		} else {
			lists.Replay(seg)
		}
		events += len(seg)
		if !more {
			break
		}
	}
	out = append(out, lists.Violations()...)

	// Step 2: reconstruction vs reality, then timers.
	out = append(out, lists.CompareWith(cur)...)
	out = append(out, lists.CheckTimers(now, d.cfg.Tmax, d.cfg.Tio)...)
	if spec.Kind == monitor.ResourceAllocator {
		out = append(out, ms.rl.CheckTimers(now, d.cfg.Tlimit)...)
	}

	ms.tot = counts{sends: lists.Sends, recvs: lists.Recvs}
	ms.prev = cur
	return out, events
}

// Run drives the periodic checking routine until ctx is cancelled,
// then performs one final all-monitor check so no recorded events go
// unchecked (and, when an Exporter is configured, flushes it so the
// exported trace is complete through that final checkpoint). With the
// adaptive scheduler enabled (Config.MaxInterval > 0) each monitor is
// checked on its own rate-derived interval; otherwise every monitor is
// checked every Interval. It returns all violations found while
// running.
func (d *Detector) Run(ctx context.Context) []rules.Violation {
	defer func() {
		if d.cfg.Exporter != nil {
			_ = d.cfg.Exporter.Flush()
		}
	}()
	if d.sched != nil {
		return d.runAdaptive(ctx)
	}
	if d.cfg.Interval <= 0 {
		<-ctx.Done()
		return d.CheckNow()
	}
	for {
		select {
		case <-ctx.Done():
			d.CheckNow()
			return d.Violations()
		case <-d.cfg.Clock.After(d.cfg.Interval):
			d.CheckNow()
		}
	}
}

// runAdaptive is Run's adaptive-scheduler loop: sleep until the
// earliest monitor is due, refresh every monitor's rate estimate from
// the database's per-shard counters, and checkpoint exactly the due
// subset. The final cancellation check still covers every monitor.
func (d *Detector) runAdaptive(ctx context.Context) []rules.Violation {
	for {
		wait, ok := d.sched.NextWake(d.cfg.Clock.Now())
		if !ok {
			// No monitors: nothing to schedule, but honour the contract
			// of a final check on cancellation.
			<-ctx.Done()
			d.CheckNow()
			return d.Violations()
		}
		select {
		case <-ctx.Done():
			d.CheckNow()
			return d.Violations()
		case <-d.cfg.Clock.After(wait):
			now := d.cfg.Clock.Now()
			// Rates refresh for every monitor on every tick — that is
			// what decays an idle monitor's estimate and backs its
			// interval off toward MaxInterval. The tick does O(monitors)
			// uncontended lock hops (EventCount is an RLock + atomic
			// load; Append stopped touching countMu once shards cached
			// their counter); if fleets grow to many thousands of
			// monitors, batch Observe/EventCounts APIs are the next
			// step.
			for _, ms := range d.mons {
				name := ms.mon.Name()
				d.sched.Observe(name, d.db.EventCount(name), now)
			}
			due := d.sched.Due(now)
			if len(due) == 0 {
				continue
			}
			d.checkNames(due)
			done := d.cfg.Clock.Now()
			for _, name := range due {
				d.sched.MarkChecked(name, done)
			}
			if d.met.intervals != nil {
				// Refresh the effective-interval gauges at checkpoint
				// rhythm; the map was resolved at construction, so this
				// is gauge stores, not registry lookups.
				for name, iv := range d.sched.Intervals() {
					d.met.intervals[name].Set(int64(iv))
				}
			}
		}
	}
}

// Intervals returns each monitor's current effective checking
// interval when the adaptive scheduler is enabled (nil otherwise) —
// the observability hook the adaptive example and benchmarks read.
func (d *Detector) Intervals() map[string]time.Duration {
	if d.sched == nil {
		return nil
	}
	return d.sched.Intervals()
}

// Violations returns every violation found so far, in detection order.
func (d *Detector) Violations() []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]rules.Violation(nil), d.found...)
}

// Stats returns a copy of the detector's activity counters, with the
// checkpoint-latency percentiles computed from the detect_check_ns
// histogram (see the CheckP50 field note).
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.CheckP50 = time.Duration(d.met.checkNs.Quantile(0.50))
	st.CheckP99 = time.Duration(d.met.checkNs.Quantile(0.99))
	return st
}
