// Package detect implements the invisible part of the augmented
// monitor construct: the periodic checking routine running Algorithm-1
// (general concurrency-control checking), Algorithm-2 (consistency of
// resource states) and Algorithm-3 (calling orders), plus the
// real-time calling-order checker for resource-allocator monitors
// (§3.3 — "Our fault detection strategy includes two phases: real-time
// checking of calling orders … and periodical checking of other
// errors").
//
// At each checkpoint the detector freezes every monitored monitor
// (suspending all processes attempting monitor operations, as §4
// prescribes), snapshots their actual scheduling states, drains the
// event segment recorded since the previous checkpoint, replays it
// through the checking lists, and compares the reconstruction with
// reality. Timers (Tmax, Tio, Tlimit) close the gap for faults whose
// only symptom is that nothing happens.
package detect

import (
	"context"
	"sync"
	"time"

	"robustmon/internal/checklists"
	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

// Config parameterises the detector.
type Config struct {
	// Interval is the checking period T. Tmax < T should hold for the
	// timers to be meaningful (§3.3). Used by Run; CheckNow ignores it.
	Interval time.Duration
	// Tmax is the longest a process may stay inside a monitor or on a
	// condition queue (ST-5). Zero disables.
	Tmax time.Duration
	// Tio is the starvation timeout for the entry queue (ST-6). Zero
	// disables.
	Tio time.Duration
	// Tlimit is the longest a process may hold an allocated resource
	// (ST-8c). Zero disables.
	Tlimit time.Duration
	// Clock is the time source (default: wall clock).
	Clock clock.Clock
	// HoldWorld keeps every monitor frozen for the whole check, exactly
	// as the paper's prototype suspends all processes during checking.
	// When false, monitors are thawed as soon as their snapshot and the
	// segment are taken (the cheaper variant measured by the ablation
	// benchmarks). Default true via New.
	HoldWorld bool
	// OnViolation, when set, is called synchronously for each violation
	// as it is found.
	OnViolation func(rules.Violation)
	// Extra checkers run at every checkpoint while the world is frozen;
	// the assertion sets of the §5 extension plug in here.
	Extra []Checker
	// SuspendOverhead simulates the fixed per-checkpoint cost of the
	// paper's prototype, whose checking routine suspended every user
	// process via 2001-era JVM thread suspension — a platform cost that
	// does not exist on a modern Go runtime (our Freeze is microseconds).
	// When positive and HoldWorld is set, the detector stalls this long
	// at each checkpoint while the world is frozen. Zero (the default)
	// measures the native cost. Used by the E2 experiment to reproduce
	// Table 1's interval-dependence; see DESIGN.md and EXPERIMENTS.md.
	SuspendOverhead time.Duration
}

// Checker is an additional checkpoint-time check (e.g. a user-supplied
// assertion set from internal/assert).
type Checker interface {
	// Check evaluates at instant now and returns any violations.
	Check(now time.Time) []rules.Violation
}

// counts carries the cumulative r/s counters of one coordinator across
// checkpoints.
type counts struct{ sends, recvs int }

// Detector is the periodic checking routine. Construct with New; all
// methods are safe for concurrent use, though checks themselves are
// serialised.
type Detector struct {
	cfg Config
	db  *history.DB

	mu       sync.Mutex
	mons     []*monitor.Monitor
	prev     map[string]state.Snapshot
	totals   map[string]counts
	reqLists map[string]*checklists.RequestList
	found    []rules.Violation
	stats    Stats
}

// Stats summarises detector activity (used by the overhead benches).
type Stats struct {
	// Checks is the number of completed checkpoints.
	Checks int
	// Events is the number of events replayed.
	Events int
	// Violations is the number of violations found (periodic phase).
	Violations int
	// FrozenFor is the cumulative wall time the world was held frozen.
	FrozenFor time.Duration
}

// New builds a detector over the given history database and monitors,
// and takes the initial checkpoint snapshots. Create the detector
// before starting the workload so the first segment is anchored at a
// known state.
func New(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	d := &Detector{
		cfg:      cfg,
		db:       db,
		mons:     mons,
		prev:     make(map[string]state.Snapshot, len(mons)),
		totals:   make(map[string]counts, len(mons)),
		reqLists: make(map[string]*checklists.RequestList, len(mons)),
	}
	for _, m := range mons {
		m.Freeze()
		d.prev[m.Name()] = m.Snapshot().Clone()
		m.Thaw()
		d.reqLists[m.Name()] = checklists.NewRequestList(m.Spec())
	}
	return d
}

// NewDefault is New with the paper-faithful HoldWorld behaviour.
func NewDefault(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	cfg.HoldWorld = true
	return New(db, cfg, mons...)
}

// CheckNow runs one checkpoint (all three algorithms) and returns the
// violations found at this checkpoint.
func (d *Detector) CheckNow() []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()

	start := d.cfg.Clock.Now()
	for _, m := range d.mons {
		m.Freeze()
	}
	segment := d.db.Drain()
	lastSeq := d.db.LastSeq()
	snaps := make(map[string]state.Snapshot, len(d.mons))
	for _, m := range d.mons {
		snap := m.Snapshot().Clone()
		snap.LastSeq = lastSeq
		snaps[m.Name()] = snap
		// §4: the database keeps the checkpoint states alongside the
		// event sequence (retained only in full-trace configurations).
		d.db.AppendState(snap)
	}
	if !d.cfg.HoldWorld {
		for _, m := range d.mons {
			m.Thaw()
		}
	}

	var out []rules.Violation
	now := d.cfg.Clock.Now()
	for _, m := range d.mons {
		name := m.Name()
		seg := segment.ByMonitor(name)
		out = append(out, d.checkMonitor(m, seg, snaps[name], now)...)
		d.stats.Events += len(seg)
	}
	for _, extra := range d.cfg.Extra {
		out = append(out, extra.Check(now)...)
	}
	if d.cfg.SuspendOverhead > 0 && d.cfg.HoldWorld {
		// Simulated platform suspension cost (see Config.SuspendOverhead).
		// Real sleep, deliberately not the configured clock: this models
		// wall-clock stall of the frozen world.
		time.Sleep(d.cfg.SuspendOverhead)
	}

	if d.cfg.HoldWorld {
		for _, m := range d.mons {
			m.Thaw()
		}
	}
	d.stats.FrozenFor += d.cfg.Clock.Now().Sub(start)
	d.stats.Checks++
	d.stats.Violations += len(out)
	for i := range out {
		out[i].Phase = "periodic"
		d.found = append(d.found, out[i])
		if d.cfg.OnViolation != nil {
			d.cfg.OnViolation(out[i])
		}
	}
	return out
}

// checkMonitor runs Algorithms 1–3 for one monitor's segment. Caller
// holds d.mu.
func (d *Detector) checkMonitor(m *monitor.Monitor, seg event.Seq, cur state.Snapshot, now time.Time) []rules.Violation {
	spec := m.Spec()
	name := m.Name()
	tot := d.totals[name]

	// Algorithm-1 Step 1 (+ Algorithm-2 Step 1 for coordinators): seed
	// from the previous snapshot and replay the segment.
	lists := checklists.FromSnapshot(spec, d.prev[name], tot.sends, tot.recvs)
	var out []rules.Violation
	rl := d.reqLists[name]
	for _, e := range seg {
		lists.Apply(e)
		if spec.Kind == monitor.ResourceAllocator {
			out = append(out, rl.Apply(e)...)
		}
	}
	out = append(out, lists.Violations()...)

	// Step 2: reconstruction vs reality, then timers.
	out = append(out, lists.CompareWith(cur)...)
	out = append(out, lists.CheckTimers(now, d.cfg.Tmax, d.cfg.Tio)...)
	if spec.Kind == monitor.ResourceAllocator {
		out = append(out, rl.CheckTimers(now, d.cfg.Tlimit)...)
	}

	d.totals[name] = counts{sends: lists.Sends, recvs: lists.Recvs}
	d.prev[name] = cur
	return out
}

// Run invokes CheckNow every Interval until ctx is cancelled, then
// performs one final check so no recorded events go unchecked. It
// returns all violations found while running.
func (d *Detector) Run(ctx context.Context) []rules.Violation {
	if d.cfg.Interval <= 0 {
		<-ctx.Done()
		return d.CheckNow()
	}
	for {
		select {
		case <-ctx.Done():
			d.CheckNow()
			return d.Violations()
		case <-d.cfg.Clock.After(d.cfg.Interval):
			d.CheckNow()
		}
	}
}

// Violations returns every violation found so far, in detection order.
func (d *Detector) Violations() []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]rules.Violation(nil), d.found...)
}

// Stats returns a copy of the detector's activity counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
