// Package detect implements the invisible part of the augmented
// monitor construct: the periodic checking routine running Algorithm-1
// (general concurrency-control checking), Algorithm-2 (consistency of
// resource states) and Algorithm-3 (calling orders), plus the
// real-time calling-order checker for resource-allocator monitors
// (§3.3 — "Our fault detection strategy includes two phases: real-time
// checking of calling orders … and periodical checking of other
// errors").
//
// Checkpoints run as a parallel pipeline over the sharded history
// database: each monitor's freeze → snapshot → drain-own-shard →
// replay → thaw is independent work, distributed across a bounded
// worker pool. Two modes exist. HoldWorld (the paper-faithful default)
// is a two-phase barrier: phase one freezes every monitored monitor
// and takes all snapshots and shard drains while the world is stopped,
// phase two replays the per-monitor segments in parallel before
// thawing, so the checkpoint observes one consistent global state
// exactly as §4 prescribes. With HoldWorld off, each monitor is
// frozen, snapshotted, drained and thawed individually and never stops
// an unrelated monitor — the cheap mode for many-monitor workloads.
// Timers (Tmax, Tio, Tlimit) close the gap for faults whose only
// symptom is that nothing happens. See DESIGN.md for the architecture.
package detect

import (
	"context"
	"runtime"
	"sync"
	"time"

	"robustmon/internal/checklists"
	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/rules"
	"robustmon/internal/state"
)

// Config parameterises the detector.
type Config struct {
	// Interval is the checking period T. Tmax < T should hold for the
	// timers to be meaningful (§3.3). Used by Run; CheckNow ignores it.
	Interval time.Duration
	// Tmax is the longest a process may stay inside a monitor or on a
	// condition queue (ST-5). Zero disables.
	Tmax time.Duration
	// Tio is the starvation timeout for the entry queue (ST-6). Zero
	// disables.
	Tio time.Duration
	// Tlimit is the longest a process may hold an allocated resource
	// (ST-8c). Zero disables.
	Tlimit time.Duration
	// Clock is the time source (default: wall clock).
	Clock clock.Clock
	// HoldWorld keeps every monitor frozen for the whole check, exactly
	// as the paper's prototype suspends all processes during checking.
	// When false, each monitor is frozen only while its own snapshot and
	// shard drain are taken, and unrelated monitors never stop (the
	// cheaper variant measured by the ablation benchmarks). Default true
	// via New.
	HoldWorld bool
	// Workers bounds the checkpoint worker pool: how many monitors are
	// checked concurrently within one checkpoint. Zero means
	// min(GOMAXPROCS, number of monitors); 1 reproduces the serial
	// checking order exactly.
	Workers int
	// OnViolation, when set, is called synchronously for each violation
	// as it is found.
	OnViolation func(rules.Violation)
	// Extra checkers run at every checkpoint while the world is frozen;
	// the assertion sets of the §5 extension plug in here.
	Extra []Checker
	// Exporter, when set, receives every segment drained from the
	// history database: New adds it as a drain tee (additive, so
	// detectors sharing a database never unwire each other), and Run
	// flushes it after the final checkpoint so the exported trace
	// covers the whole run. This is the streaming replacement for
	// history.WithFullTrace — offline tooling replays the exporter's
	// sink instead of an in-memory full trace.
	Exporter SegmentExporter
	// SuspendOverhead simulates the fixed per-checkpoint cost of the
	// paper's prototype, whose checking routine suspended every user
	// process via 2001-era JVM thread suspension — a platform cost that
	// does not exist on a modern Go runtime (our Freeze is microseconds).
	// When positive and HoldWorld is set, the detector stalls this long
	// at each checkpoint while the world is frozen. Zero (the default)
	// measures the native cost. Used by the E2 experiment to reproduce
	// Table 1's interval-dependence; see DESIGN.md and EXPERIMENTS.md.
	SuspendOverhead time.Duration
}

// Checker is an additional checkpoint-time check (e.g. a user-supplied
// assertion set from internal/assert).
type Checker interface {
	// Check evaluates at instant now and returns any violations.
	Check(now time.Time) []rules.Violation
}

// SegmentExporter is the detector's view of the async trace-export
// pipeline (internal/export.Exporter implements it; the indirection
// keeps detect free of an export dependency). Consume matches
// history.DrainTee; Flush forces everything consumed so far to the
// sink.
type SegmentExporter interface {
	Consume(monitor string, seg event.Seq)
	Flush() error
}

// counts carries the cumulative r/s counters of one coordinator across
// checkpoints.
type counts struct{ sends, recvs int }

// monState is the per-monitor checking state carried across
// checkpoints. Each monitor has exactly one monState, and within a
// checkpoint exactly one worker touches it, so no lock is needed
// beyond the checkpoint barrier itself.
type monState struct {
	mon  *monitor.Monitor
	prev state.Snapshot
	tot  counts
	rl   *checklists.RequestList
}

// Detector is the periodic checking routine. Construct with New; all
// methods are safe for concurrent use, though checkpoints themselves
// are serialised (the worker pool parallelises within a checkpoint).
type Detector struct {
	cfg Config
	db  *history.DB

	mu    sync.Mutex
	mons  []*monState
	found []rules.Violation
	stats Stats
}

// Stats summarises detector activity (used by the overhead benches).
type Stats struct {
	// Checks is the number of completed checkpoints.
	Checks int
	// Events is the number of events replayed.
	Events int
	// Violations is the number of violations found (periodic phase).
	Violations int
	// FrozenFor is the cumulative wall time the world was held frozen.
	FrozenFor time.Duration
}

// New builds a detector over the given history database and monitors,
// and takes the initial checkpoint snapshots. Create the detector
// before starting the workload so the first segment is anchored at a
// known state. Checkpoints drain only the shards of the monitors
// given here: a monitor recording into db but listed with no detector
// keeps buffering its events (see history.DB.DrainMonitor), so every
// recording monitor should be covered by some detector.
func New(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	d := &Detector{
		cfg:  cfg,
		db:   db,
		mons: make([]*monState, 0, len(mons)),
	}
	if cfg.Exporter != nil {
		// Checkpoints now feed the export pipeline for free: every
		// drained segment is teed to the exporter. Added, not set, so
		// detectors sharing one database never unwire each other's
		// exporters — each added exporter observes the whole drain
		// stream.
		db.AddDrainTee(cfg.Exporter.Consume)
	}
	for _, m := range mons {
		m.Freeze()
		prev := m.Snapshot().Clone()
		m.Thaw()
		d.mons = append(d.mons, &monState{
			mon:  m,
			prev: prev,
			rl:   checklists.NewRequestList(m.Spec()),
		})
	}
	return d
}

// NewDefault is New with the paper-faithful HoldWorld behaviour.
func NewDefault(db *history.DB, cfg Config, mons ...*monitor.Monitor) *Detector {
	cfg.HoldWorld = true
	return New(db, cfg, mons...)
}

// workers returns the effective checkpoint pool size.
func (d *Detector) workers() int {
	n := d.cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(d.mons) {
		n = len(d.mons)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// CheckNow runs one checkpoint (all three algorithms) and returns the
// violations found at this checkpoint. Violations are reported in
// monitor order regardless of worker scheduling, so the parallel
// pipeline yields the same violation set (and order) as a serial pass.
func (d *Detector) CheckNow() []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()

	start := d.cfg.Clock.Now()
	perMon := make([][]rules.Violation, len(d.mons))
	events := make([]int, len(d.mons))

	if d.cfg.HoldWorld {
		// Two-phase barrier (§4): stop the whole world, capture every
		// snapshot and shard segment against the same frozen state …
		for _, ms := range d.mons {
			ms.mon.Freeze()
		}
		lastSeq := d.db.LastSeq()
		segs := make([]event.Seq, len(d.mons))
		snaps := make([]state.Snapshot, len(d.mons))
		for i, ms := range d.mons {
			snap := ms.mon.Snapshot().Clone()
			snap.LastSeq = lastSeq
			snaps[i] = snap
			// §4: the database keeps the checkpoint states alongside the
			// event sequence (retained only in full-trace configurations).
			d.db.AppendState(snap)
			segs[i] = d.db.DrainMonitor(ms.mon.Name())
		}
		// … then replay all segments through the worker pool while the
		// world is still held, as the paper's prototype does.
		now := d.cfg.Clock.Now()
		d.runPool(func(i int, ms *monState) {
			perMon[i] = d.checkMonitor(ms, segs[i], snaps[i], now)
			events[i] = len(segs[i])
		})
		// Extras run while the world is still frozen, as before.
		for _, extra := range d.cfg.Extra {
			perMon = append(perMon, extra.Check(now))
		}
		if d.cfg.SuspendOverhead > 0 {
			// Simulated platform suspension cost (see Config.SuspendOverhead).
			// Real sleep, deliberately not the configured clock: this models
			// wall-clock stall of the frozen world.
			time.Sleep(d.cfg.SuspendOverhead)
		}
		for _, ms := range d.mons {
			ms.mon.Thaw()
		}
	} else {
		// Per-monitor mode: each worker freezes only its own monitor for
		// the snapshot+drain instant and never stops an unrelated one.
		now := d.cfg.Clock.Now()
		d.runPool(func(i int, ms *monState) {
			ms.mon.Freeze()
			snap := ms.mon.Snapshot().Clone()
			seg := d.db.DrainMonitor(ms.mon.Name())
			snap.LastSeq = ms.prev.LastSeq
			if n := len(seg); n > 0 {
				snap.LastSeq = seg[n-1].Seq
			}
			d.db.AppendState(snap)
			ms.mon.Thaw()
			perMon[i] = d.checkMonitor(ms, seg, snap, now)
			events[i] = len(seg)
		})
		// Duplicated rather than hoisted below the if/else: the HoldWorld
		// branch must run extras before thawing, this one has no frozen
		// world to order against.
		for _, extra := range d.cfg.Extra {
			perMon = append(perMon, extra.Check(now))
		}
	}

	var out []rules.Violation
	for _, vs := range perMon {
		out = append(out, vs...)
	}
	for _, n := range events {
		d.stats.Events += n
	}
	d.stats.FrozenFor += d.cfg.Clock.Now().Sub(start)
	d.stats.Checks++
	d.stats.Violations += len(out)
	for i := range out {
		out[i].Phase = "periodic"
		d.found = append(d.found, out[i])
		if d.cfg.OnViolation != nil {
			d.cfg.OnViolation(out[i])
		}
	}
	return out
}

// runPool applies fn to every monitor state through the bounded worker
// pool and waits for all of them. fn for different indices runs
// concurrently; each index runs exactly once.
func (d *Detector) runPool(fn func(i int, ms *monState)) {
	n := d.workers()
	if n == 1 {
		for i, ms := range d.mons {
			fn(i, ms)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i, d.mons[i])
			}
		}()
	}
	for i := range d.mons {
		next <- i
	}
	close(next)
	wg.Wait()
}

// checkMonitor runs Algorithms 1–3 for one monitor's segment and
// advances its cross-checkpoint state. Within a checkpoint it is
// called by exactly one worker per monitor; the checkpoint barrier in
// CheckNow orders these calls across checkpoints.
func (d *Detector) checkMonitor(ms *monState, seg event.Seq, cur state.Snapshot, now time.Time) []rules.Violation {
	spec := ms.mon.Spec()

	// Algorithm-1 Step 1 (+ Algorithm-2 Step 1 for coordinators): seed
	// from the previous snapshot and replay the segment.
	lists := checklists.FromSnapshot(spec, ms.prev, ms.tot.sends, ms.tot.recvs)
	var out []rules.Violation
	for _, e := range seg {
		lists.Apply(e)
		if spec.Kind == monitor.ResourceAllocator {
			out = append(out, ms.rl.Apply(e)...)
		}
	}
	out = append(out, lists.Violations()...)

	// Step 2: reconstruction vs reality, then timers.
	out = append(out, lists.CompareWith(cur)...)
	out = append(out, lists.CheckTimers(now, d.cfg.Tmax, d.cfg.Tio)...)
	if spec.Kind == monitor.ResourceAllocator {
		out = append(out, ms.rl.CheckTimers(now, d.cfg.Tlimit)...)
	}

	ms.tot = counts{sends: lists.Sends, recvs: lists.Recvs}
	ms.prev = cur
	return out
}

// Run invokes CheckNow every Interval until ctx is cancelled, then
// performs one final check so no recorded events go unchecked (and,
// when an Exporter is configured, flushes it so the exported trace is
// complete through that final checkpoint). It returns all violations
// found while running.
func (d *Detector) Run(ctx context.Context) []rules.Violation {
	defer func() {
		if d.cfg.Exporter != nil {
			_ = d.cfg.Exporter.Flush()
		}
	}()
	if d.cfg.Interval <= 0 {
		<-ctx.Done()
		return d.CheckNow()
	}
	for {
		select {
		case <-ctx.Done():
			d.CheckNow()
			return d.Violations()
		case <-d.cfg.Clock.After(d.cfg.Interval):
			d.CheckNow()
		}
	}
}

// Violations returns every violation found so far, in detection order.
func (d *Detector) Violations() []rules.Violation {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]rules.Violation(nil), d.found...)
}

// Stats returns a copy of the detector's activity counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
