package detect

import (
	"fmt"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/faults"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// newManyMonitors builds n operation-manager monitors wired to one
// shared database.
func newManyMonitors(t testing.TB, db *history.DB, n int, opts ...monitor.Option) []*monitor.Monitor {
	t.Helper()
	mons := make([]*monitor.Monitor, n)
	for i := range mons {
		spec := monitor.Spec{
			Name:       fmt.Sprintf("mon%02d", i),
			Kind:       monitor.OperationManager,
			Conditions: []string{"ok"},
			Procedures: []string{"Op"},
		}
		m, err := monitor.New(spec, append([]monitor.Option{monitor.WithRecorder(db)}, opts...)...)
		if err != nil {
			t.Fatalf("monitor %d: %v", i, err)
		}
		mons[i] = m
	}
	return mons
}

// hammer drives every monitor with procs concurrent processes doing
// Enter/Exit pairs and returns after all of them finish.
func hammer(rt *proc.Runtime, mons []*monitor.Monitor, procs, pairs int) {
	for _, m := range mons {
		m := m
		for w := 0; w < procs; w++ {
			rt.Spawn("w", func(p *proc.P) {
				for j := 0; j < pairs; j++ {
					if err := m.Enter(p, "Op"); err != nil {
						return
					}
					_ = m.Exit(p, "Op")
				}
			})
		}
	}
	rt.Join()
}

// TestParallelCheckpointCleanUnderLoad hammers a sharded database from
// many goroutines across many monitors while CheckNow runs repeatedly
// in both checkpoint modes — the -race workout for the worker pool. A
// torn drain or snapshot would surface as a reconstruction violation.
func TestParallelCheckpointCleanUnderLoad(t *testing.T) {
	t.Parallel()
	for _, hold := range []bool{true, false} {
		hold := hold
		name := "hold-world"
		if !hold {
			name = "per-monitor"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db := history.New()
			mons := newManyMonitors(t, db, 6)
			det := New(db, Config{
				Tmax: time.Minute, Tio: time.Minute,
				Clock: clock.Real{}, HoldWorld: hold, Workers: 4,
			}, mons...)
			rt := proc.NewRuntime()
			done := make(chan struct{})
			go func() {
				defer close(done)
				hammer(rt, mons, 3, 50)
			}()
			for {
				select {
				case <-done:
					if vs := det.CheckNow(); len(vs) != 0 {
						t.Fatalf("final check: %v", vs)
					}
					if st := det.Stats(); st.Events != int(db.Total()) {
						t.Fatalf("replayed %d events, recorded %d — events lost or duplicated",
							st.Events, db.Total())
					}
					return
				default:
					if vs := det.CheckNow(); len(vs) != 0 {
						t.Fatalf("checkpoint under load: %v", vs)
					}
				}
			}
		})
	}
}

// TestHoldWorldSnapshotConsistency proves the two-phase barrier still
// observes one consistent world-stop picture across shards: every
// snapshot taken at a HoldWorld checkpoint carries the same LastSeq,
// and no event beyond that LastSeq is drained by that checkpoint.
func TestHoldWorldSnapshotConsistency(t *testing.T) {
	t.Parallel()
	const nMons = 5
	db := history.New(history.WithFullTrace())
	mons := newManyMonitors(t, db, nMons)
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock: clock.Real{}, HoldWorld: true, Workers: 3,
	}, mons...)

	rt := proc.NewRuntime()
	done := make(chan struct{})
	go func() {
		defer close(done)
		hammer(rt, mons, 2, 40)
	}()
	checks := 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		if vs := det.CheckNow(); len(vs) != 0 {
			t.Fatalf("violations under load: %v", vs)
		}
		checks++
	}

	states := db.States()
	if len(states) != checks*nMons {
		t.Fatalf("recorded %d states over %d checkpoints of %d monitors", len(states), checks, nMons)
	}
	prevLast := int64(0)
	for c := 0; c < checks; c++ {
		group := states[c*nMons : (c+1)*nMons]
		last := group[0].LastSeq
		for _, s := range group {
			if s.LastSeq != last {
				t.Fatalf("checkpoint %d: snapshots disagree on LastSeq (%d vs %d) — world-stop torn across shards",
					c, s.LastSeq, last)
			}
		}
		if last < prevLast {
			t.Fatalf("checkpoint %d: LastSeq went backwards (%d after %d)", c, last, prevLast)
		}
		prevLast = last
	}
	// Every recorded event must fall under the final checkpoint horizon.
	if total := db.LastSeq(); prevLast != total {
		t.Fatalf("final checkpoint horizon %d, database LastSeq %d", prevLast, total)
	}
}

// TestPerMonitorModeNeverStopsOthers checks the per-monitor pipeline:
// while one monitor is held frozen by a stuck in-flight checkpoint
// concern — simulated by freezing it directly — checkpoints with
// HoldWorld=false must still complete for the remaining monitors.
func TestPerMonitorModeNeverStopsOthers(t *testing.T) {
	t.Parallel()
	db := history.New()
	mons := newManyMonitors(t, db, 3)
	// The detector only checks monitors 1 and 2; monitor 0 stays frozen
	// for the whole test. A world-stop checkpoint over it would hang.
	det := New(db, Config{
		Tmax: time.Minute, Tio: time.Minute,
		Clock: clock.Real{}, HoldWorld: false, Workers: 2,
	}, mons[1], mons[2])
	mons[0].Freeze()
	defer mons[0].Thaw()

	rt := proc.NewRuntime()
	hammer(rt, mons[1:], 2, 25)
	doneCh := make(chan []rules.Violation, 1)
	go func() { doneCh <- det.CheckNow() }()
	select {
	case vs := <-doneCh:
		if len(vs) != 0 {
			t.Fatalf("violations: %v", vs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("per-monitor checkpoint blocked behind an unrelated frozen monitor")
	}
}

// TestParallelViolationParity runs the same deterministic faulty
// workload under Workers=1 (the serial order) and Workers=4 and
// requires identical violation sequences: the worker pool must not
// change what is detected or how it is reported.
func TestParallelViolationParity(t *testing.T) {
	t.Parallel()
	run := func(workers int) []rules.Violation {
		db := history.New()
		clk := clock.NewVirtual(epoch)
		const nMons = 4
		mons := make([]*monitor.Monitor, nMons)
		injs := make([]*faults.Injector, nMons)
		for i := range mons {
			injs[i] = faults.NewInjector(faults.SignalMonitorNotReleased)
			m, err := monitor.New(monitor.Spec{
				Name:       fmt.Sprintf("mon%02d", i),
				Kind:       monitor.OperationManager,
				Conditions: []string{"ok"},
				Procedures: []string{"Op"},
			}, monitor.WithRecorder(db), monitor.WithClock(clk), monitor.WithHooks(injs[i].Hooks()))
			if err != nil {
				t.Fatal(err)
			}
			mons[i] = m
		}
		det := New(db, Config{Clock: clk, HoldWorld: true, Workers: workers}, mons...)
		rt := proc.NewRuntime()
		// Deterministic: one process per monitor, run strictly in order,
		// fault armed on even monitors only.
		for i, m := range mons {
			if i%2 == 0 {
				injs[i].Arm()
			}
			m := m
			rt.Spawn("p", func(p *proc.P) {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			})
			rt.Join()
		}
		return det.CheckNow()
	}

	serial := run(1)
	parallel := run(4)
	if len(serial) == 0 {
		t.Fatal("faulty corpus produced no violations")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial found %d violations, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Rule != p.Rule || s.Monitor != p.Monitor || s.Pid != p.Pid || s.Fault != p.Fault {
			t.Fatalf("violation %d differs: serial %v vs parallel %v", i, s, p)
		}
	}
}
