package detect

import (
	"sync"
	"testing"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/proc"
)

// healthCapture is a TraceExporter that captures health snapshots —
// the ConsumeHealth leg of the wiring, observable.
type healthCapture struct {
	mu      sync.Mutex
	healths []obs.HealthRecord
}

func (c *healthCapture) Consume(string, event.Seq)            {}
func (c *healthCapture) ConsumeMarker(history.RecoveryMarker) {}
func (c *healthCapture) ConsumeAlert(obsrules.Alert)          {}
func (c *healthCapture) Flush() error                         { return nil }
func (c *healthCapture) ConsumeHealth(h obs.HealthRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.healths = append(c.healths, h)
}
func (c *healthCapture) captured() []obs.HealthRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.HealthRecord(nil), c.healths...)
}

// TestHealthEmissionCadence: the first checkpoint always emits (the
// timeline's anchor), later checkpoints emit only after HealthEvery
// has elapsed on the configured clock, and each record carries the
// database's current sequence horizon plus the live registry.
func TestHealthEmissionCadence(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	cap := &healthCapture{}
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
		Obs: reg, HealthEvery: time.Minute, Exporter: cap,
	})
	f.rt.Spawn("worker", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()

	f.det.CheckNow() // anchor: always emits
	f.det.CheckNow() // same instant: cadence not elapsed
	if got := cap.captured(); len(got) != 1 {
		t.Fatalf("after two same-instant checkpoints: %d snapshots, want the anchor only", len(got))
	}

	f.clk.Advance(30 * time.Second)
	f.det.CheckNow() // half the cadence: still nothing
	if got := cap.captured(); len(got) != 1 {
		t.Fatalf("after half the cadence: %d snapshots, want 1", len(got))
	}

	f.clk.Advance(30 * time.Second)
	f.det.CheckNow() // cadence elapsed since the anchor
	got := cap.captured()
	if len(got) != 2 {
		t.Fatalf("after a full cadence: %d snapshots, want 2", len(got))
	}

	// Each record: the capture instant, the horizon, the registry.
	if !got[0].At.Equal(epoch) {
		t.Fatalf("anchor captured at %v, want the epoch", got[0].At)
	}
	if !got[1].At.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("second snapshot at %v, want epoch+1m", got[1].At)
	}
	if want := f.db.LastSeq(); got[1].Seq != want {
		t.Fatalf("snapshot horizon %d, database says %d", got[1].Seq, want)
	}
	if v, ok := got[1].Metrics.Counter("detect_checks_total"); !ok || v < 3 {
		t.Fatalf("snapshot registry detect_checks_total = %d (ok=%v), want >= 3", v, ok)
	}
	if v, _ := reg.Snapshot().Counter("detect_health_emitted_total"); v != 2 {
		t.Fatalf("detect_health_emitted_total = %d, want 2", v)
	}
}

// TestHealthEmissionRequiresAllLegs: emission needs a cadence, a
// registry and a health-capable exporter; missing any one leg
// disables it without disturbing the checkpoint path.
func TestHealthEmissionRequiresAllLegs(t *testing.T) {
	t.Parallel()
	t.Run("no cadence", func(t *testing.T) {
		t.Parallel()
		cap := &healthCapture{}
		f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
			Obs: obs.NewRegistry(), Exporter: cap,
		})
		f.det.CheckNow()
		if got := cap.captured(); len(got) != 0 {
			t.Fatalf("HealthEvery=0 still emitted %d snapshots", len(got))
		}
	})
	t.Run("no registry", func(t *testing.T) {
		t.Parallel()
		cap := &healthCapture{}
		f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
			HealthEvery: time.Minute, Exporter: cap,
		})
		f.det.CheckNow()
		if got := cap.captured(); len(got) != 0 {
			t.Fatalf("nil registry still emitted %d snapshots", len(got))
		}
	})
	t.Run("no exporter", func(t *testing.T) {
		t.Parallel()
		reg := obs.NewRegistry()
		f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
			Obs: reg, HealthEvery: time.Minute,
		})
		f.det.CheckNow() // must not panic with nothing to carry the record
		if v, _ := reg.Snapshot().Counter("detect_health_emitted_total"); v != 0 {
			t.Fatalf("nil exporter counted %d emissions", v)
		}
	})
}

// TestStatsLatencyFromHistogram: CheckP50/CheckP99 are derived from
// the detect_check_ns histogram — live with and without a registry,
// ordered, and (with a registry) in step with the exposed histogram.
func TestStatsLatencyFromHistogram(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	// A real clock: checkpoint latency is measured on Config.Clock, and
	// a virtual clock would observe every checkpoint as instantaneous.
	db := history.New(history.WithFullTrace())
	m, err := monitor.New(managerSpec(), monitor.WithRecorder(db))
	if err != nil {
		t.Fatal(err)
	}
	det := New(db, Config{Clock: clock.Real{}, HoldWorld: true, Obs: reg}, m)
	for i := 0; i < 5; i++ {
		det.CheckNow()
	}
	st := det.Stats()
	if st.Checks != 5 {
		t.Fatalf("Checks = %d, want 5", st.Checks)
	}
	if st.CheckP99 <= 0 || st.CheckP50 > st.CheckP99 {
		t.Fatalf("latency percentiles p50=%v p99=%v, want 0 < p50 <= p99", st.CheckP50, st.CheckP99)
	}
	h, ok := reg.Snapshot().Histogram("detect_check_ns")
	if !ok || h.Count != 5 {
		t.Fatalf("detect_check_ns count = %d (ok=%v), want the 5 checkpoints", h.Count, ok)
	}
	if got := time.Duration(h.Quantile(0.99)); got != st.CheckP99 {
		t.Fatalf("histogram p99 %v != Stats p99 %v — two readings of one histogram", got, st.CheckP99)
	}
}
