package detect

import (
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/obs"
	obsrules "robustmon/internal/obs/rules"
	"robustmon/internal/proc"
	"robustmon/internal/rules"
)

// alertCapture is a TraceExporter observing the self-watching legs:
// alert transitions and the recovery markers of rule-driven resets.
type alertCapture struct {
	mu      sync.Mutex
	alerts  []obsrules.Alert
	markers []history.RecoveryMarker
}

func (c *alertCapture) Consume(string, event.Seq)      {}
func (c *alertCapture) ConsumeHealth(obs.HealthRecord) {}
func (c *alertCapture) Flush() error                   { return nil }
func (c *alertCapture) ConsumeAlert(a obsrules.Alert) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alerts = append(c.alerts, a)
}
func (c *alertCapture) ConsumeMarker(m history.RecoveryMarker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markers = append(c.markers, m)
}
func (c *alertCapture) captured() ([]obsrules.Alert, []history.RecoveryMarker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obsrules.Alert(nil), c.alerts...),
		append([]history.RecoveryMarker(nil), c.markers...)
}

// TestMetaViolationFromFiringRule: a threshold rule breaching at the
// health cadence fires exactly once per episode, is persisted through
// ConsumeAlert, and surfaces as a synthetic meta-violation (rules.Meta,
// Phase "meta") through found and OnViolation — hysteresis included:
// FireAfter 2 needs two consecutive breaching evaluations.
func TestMetaViolationFromFiringRule(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	cap := &alertCapture{}
	var onViolation []rules.Violation
	var vmu sync.Mutex
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
		Obs: reg, HealthEvery: time.Minute, Exporter: cap,
		Rules: []obsrules.Rule{{
			// detect_checks_total grows by one per checkpoint, so the
			// breach instant is exact: evaluations 1 and 2 observe 1 and
			// 2 (no breach), 3 and 4 observe 3 and 4 (breach streak),
			// and FireAfter 2 fires on the 4th.
			Name: "too-many-checks", Metric: "detect_checks_total",
			Ceiling: 2, FireAfter: 2,
		}},
		OnViolation: func(v rules.Violation) {
			vmu.Lock()
			onViolation = append(onViolation, v)
			vmu.Unlock()
		},
	})
	checkpoint := func() {
		f.det.CheckNow()
		f.clk.Advance(time.Minute) // next checkpoint is a fresh evaluation
	}
	checkpoint() // eval 1: checks=1, under the ceiling
	checkpoint() // eval 2: checks=2, still under
	checkpoint() // eval 3: checks=3, breach 1 of 2 — armed, not firing
	alerts, _ := cap.captured()
	if len(alerts) != 0 {
		t.Fatalf("rule fired after one breaching evaluation despite FireAfter=2: %v", alerts)
	}
	checkpoint() // eval 4: checks=4, breach 2 of 2 — fires
	checkpoint() // eval 5: still breaching, already firing — no new alert

	alerts, _ = cap.captured()
	if len(alerts) != 1 {
		t.Fatalf("got %d alert transitions, want exactly 1 fire", len(alerts))
	}
	a := alerts[0]
	if !a.Firing || a.Rule != "too-many-checks" || a.Value != 4 || a.Ceiling != 2 {
		t.Fatalf("fire alert = %+v", a)
	}
	if want := f.db.LastSeq(); a.Seq != want {
		t.Fatalf("alert horizon %d, database says %d", a.Seq, want)
	}

	vmu.Lock()
	got := append([]rules.Violation(nil), onViolation...)
	vmu.Unlock()
	if len(got) != 1 {
		t.Fatalf("OnViolation saw %d violations, want 1", len(got))
	}
	v := got[0]
	if v.Rule != rules.Meta || v.Phase != "meta" || v.Monitor != "too-many-checks" {
		t.Fatalf("meta violation = %+v", v)
	}
	if !rules.HasRule(f.det.Violations(), rules.Meta) {
		t.Fatal("meta violation missing from Detector.Violations")
	}
	if st := f.det.Stats(); st.Violations != 1 {
		t.Fatalf("Stats.Violations = %d, want 1", st.Violations)
	}
	snap := reg.Snapshot()
	if fired, _ := snap.Counter("obs_rule_fired_total"); fired != 1 {
		t.Fatalf("obs_rule_fired_total = %d, want 1", fired)
	}
	if firing, _ := snap.Gauge("obs_rules_firing"); firing != 1 {
		t.Fatalf("obs_rules_firing = %d, want 1", firing)
	}
}

// TestRuleDrivenReset: a firing rule with ResetMonitor set applies a
// shard-local reset before the checkpoint that fired it returns, and
// the reset's recovery marker carries the META rule id — the detector
// healing itself, observable end to end through the exporter seam.
func TestRuleDrivenReset(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	cap := &alertCapture{}
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
		Obs: reg, HealthEvery: time.Minute, Exporter: cap,
		Rules: []obsrules.Rule{{
			// Ceiling 0 over the checkpoint counter: the anchor
			// evaluation (checks=1) already breaches, so the very first
			// CheckNow fires and resets.
			Name: "reset-on-anything", Metric: "detect_checks_total",
			Ceiling: 0, ResetMonitor: "m",
		}},
	})
	f.rt.Spawn("worker", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()

	f.det.CheckNow()
	st := f.det.Stats()
	if st.Resets != 1 {
		t.Fatalf("Stats.Resets = %d, want the rule-driven reset applied before CheckNow returned", st.Resets)
	}
	alerts, markers := cap.captured()
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("alerts = %+v, want one fire", alerts)
	}
	if len(markers) != 1 {
		t.Fatalf("markers = %+v, want the reset's recovery marker", markers)
	}
	if markers[0].Monitor != "m" || markers[0].Rule != string(rules.Meta) {
		t.Fatalf("marker = %+v, want monitor m reset under META", markers[0])
	}
	// The reset must not wedge the monitor: it keeps accepting work.
	f.rt.Spawn("after", func(p *proc.P) {
		if err := f.mon.Enter(p, "Op"); err != nil {
			return
		}
		_ = f.mon.Exit(p, "Op")
	})
	f.rt.Join()
	f.det.CheckNow()
}

// TestRulesRequireHealthLegs: Config.Rules without the health legs
// (cadence, registry, exporter) is inert, not a crash.
func TestRulesRequireHealthLegs(t *testing.T) {
	t.Parallel()
	f := newFixture(t, managerSpec(), monitor.Hooks{}, Config{
		Obs: obs.NewRegistry(), // no cadence, no exporter
		Rules: []obsrules.Rule{{
			Name: "r", Metric: "detect_checks_total", Ceiling: 0,
		}},
	})
	f.det.CheckNow()
	if st := f.det.Stats(); st.Violations != 0 {
		t.Fatalf("rules evaluated without the health legs: %d violations", st.Violations)
	}
}

// TestInvalidRulesPanic: a duplicate rule name is a programming error
// caught loudly at construction.
func TestInvalidRulesPanic(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a duplicate rule name")
		}
	}()
	db := history.New()
	m, err := monitor.New(managerSpec(), monitor.WithRecorder(db))
	if err != nil {
		t.Fatal(err)
	}
	New(db, Config{
		Obs: obs.NewRegistry(), HealthEvery: time.Minute, Exporter: &alertCapture{},
		Rules: []obsrules.Rule{
			{Name: "dup", Metric: "a", Ceiling: 1},
			{Name: "dup", Metric: "b", Ceiling: 2},
		},
	}, m)
}
