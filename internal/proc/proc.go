// Package proc is the process substrate under the monitors.
//
// The paper's model is a multiprogramming system of user processes
// invoking monitor procedures. To reproduce implementation-level
// faults (a monitor that loses a wake-up, resumes two processes at
// once, or never releases itself) the blocking behaviour must be under
// the library's control, not the Go runtime's: a Process blocks by
// parking on its own wake channel and is resumed explicitly by the
// monitor when its turn arrives. One Process is bound to one goroutine
// spawned through a Runtime, which also captures panics and records the
// outcome of every process (needed for the internal-termination fault,
// §2.2 I.c.4).
package proc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Status describes what a process is currently doing.
type Status int32

// Process life-cycle states.
const (
	// Ready means spawned and runnable (not blocked in a monitor).
	Ready Status = iota + 1
	// Parked means blocked on a monitor queue awaiting Unpark.
	Parked
	// Done means the process body returned normally.
	Done
	// Panicked means the process body panicked; the Runtime recovered
	// and recorded the panic value.
	Panicked
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case Parked:
		return "parked"
	case Done:
		return "done"
	case Panicked:
		return "panicked"
	default:
		return fmt.Sprintf("Status(%d)", int32(s))
	}
}

// ParkResult tells a parked process why it was woken.
type ParkResult int

// Outcomes of Park.
const (
	// Resumed means the monitor granted the process the resource it was
	// waiting for; it now owns the monitor again.
	Resumed ParkResult = iota + 1
	// Aborted means the runtime is shutting down (or a recovery policy
	// evicted the process); the caller must unwind without touching the
	// monitor.
	Aborted
)

// P is one user process.
type P struct {
	id     int64
	name   string
	status atomic.Int32

	// wake delivers at most one pending wake-up. Capacity 1 so an
	// Unpark that races ahead of Park is not lost (the classic lost
	// wake-up we must never produce ourselves - unless injected at the
	// monitor layer, where the detector can see it).
	wake chan ParkResult
}

// ID returns the process identifier (Pid in the paper's notation).
func (p *P) ID() int64 { return p.id }

// Name returns the human-readable process name.
func (p *P) Name() string { return p.name }

// Status returns the current life-cycle state.
func (p *P) Status() Status { return Status(p.status.Load()) }

// Park blocks the calling goroutine until Unpark or Abort. Only the
// goroutine bound to this process may call Park.
func (p *P) Park() ParkResult {
	p.status.Store(int32(Parked))
	r := <-p.wake
	p.status.Store(int32(Ready))
	return r
}

// Unpark resumes a parked process normally. At most one wake-up is
// buffered; a second Unpark before the process parks again would block,
// which would indicate a protocol bug in the caller — monitors only
// wake processes they just dequeued.
func (p *P) Unpark() { p.wake <- Resumed }

// Abort resumes a parked process with the Aborted result. Non-blocking:
// if a wake-up is already pending the abort is dropped (the process is
// being resumed anyway and will terminate through its body).
func (p *P) Abort() {
	select {
	case p.wake <- Aborted:
	default:
	}
}

// String renders "P<id>(<name>)".
func (p *P) String() string { return fmt.Sprintf("P%d(%s)", p.id, p.name) }

// Outcome records how a process finished.
type Outcome struct {
	Pid int64
	// Err is nil for a normal return; for a panic it wraps the panic
	// value.
	Err error
}

// Runtime spawns and tracks processes. The zero value is not usable;
// construct with NewRuntime.
type Runtime struct {
	mu      sync.Mutex
	nextPid int64
	procs   map[int64]*P
	results map[int64]Outcome
	wg      sync.WaitGroup
}

// NewRuntime returns an empty process runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		procs:   make(map[int64]*P),
		results: make(map[int64]Outcome),
	}
}

// Spawn starts a new process executing body on its own goroutine and
// returns it. Pids are assigned sequentially from 1. The body's panic,
// if any, is recovered and recorded as the process outcome.
func (r *Runtime) Spawn(name string, body func(*P)) *P {
	r.mu.Lock()
	r.nextPid++
	p := &P{
		id:   r.nextPid,
		name: name,
		wake: make(chan ParkResult, 1),
	}
	p.status.Store(int32(Ready))
	r.procs[p.id] = p
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() {
			if v := recover(); v != nil {
				p.status.Store(int32(Panicked))
				r.record(p.id, fmt.Errorf("proc: %s panicked: %v", p, v))
				return
			}
			p.status.Store(int32(Done))
			r.record(p.id, nil)
		}()
		body(p)
	}()
	return p
}

func (r *Runtime) record(pid int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[pid] = Outcome{Pid: pid, Err: err}
}

// Join blocks until every spawned process has finished. Call AbortAll
// first if some processes may be parked forever (e.g. after a
// lost-process fault injection).
func (r *Runtime) Join() {
	r.wg.Wait()
}

// AbortAll delivers an abort wake-up to every currently parked process
// so Join can complete even after wake-ups were deliberately lost.
func (r *Runtime) AbortAll() {
	r.mu.Lock()
	procs := make([]*P, 0, len(r.procs))
	for _, p := range r.procs {
		procs = append(procs, p)
	}
	r.mu.Unlock()
	for _, p := range procs {
		if p.Status() == Parked {
			p.Abort()
		}
	}
}

// Outcome returns the recorded outcome for pid; ok is false while the
// process is still running (or for an unknown pid).
func (r *Runtime) Outcome(pid int64) (Outcome, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.results[pid]
	return o, ok
}

// Get returns the process with the given pid, if it was spawned here.
func (r *Runtime) Get(pid int64) (*P, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.procs[pid]
	return p, ok
}

// Procs returns all spawned processes in pid order.
func (r *Runtime) Procs() []*P {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*P, 0, len(r.procs))
	for pid := int64(1); pid <= r.nextPid; pid++ {
		if p, ok := r.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}
