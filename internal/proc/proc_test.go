package proc

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnAssignsSequentialPids(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	a := r.Spawn("a", func(*P) {})
	b := r.Spawn("b", func(*P) {})
	if a.ID() != 1 || b.ID() != 2 {
		t.Fatalf("pids = %d,%d, want 1,2", a.ID(), b.ID())
	}
	r.Join()
}

func TestParkUnparkRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	var woke atomic.Bool
	p := r.Spawn("sleeper", func(p *P) {
		if got := p.Park(); got != Resumed {
			t.Errorf("Park = %v, want Resumed", got)
		}
		woke.Store(true)
	})
	waitStatus(t, p, Parked)
	p.Unpark()
	r.Join()
	if !woke.Load() {
		t.Fatal("process never resumed")
	}
}

func TestUnparkBeforeParkIsNotLost(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	gate := make(chan struct{})
	p := r.Spawn("late-parker", func(p *P) {
		<-gate
		if got := p.Park(); got != Resumed {
			t.Errorf("Park = %v, want Resumed", got)
		}
	})
	p.Unpark() // wake-up delivered before the process even parks
	close(gate)
	r.Join()
}

func TestAbortWakesParked(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	p := r.Spawn("victim", func(p *P) {
		if got := p.Park(); got != Aborted {
			t.Errorf("Park = %v, want Aborted", got)
		}
	})
	waitStatus(t, p, Parked)
	p.Abort()
	r.Join()
}

func TestAbortAllOnlyTouchesParked(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	parked := r.Spawn("parked", func(p *P) {
		if got := p.Park(); got != Aborted {
			t.Errorf("parked: Park = %v, want Aborted", got)
		}
	})
	resumedNormally := r.Spawn("normal", func(p *P) {
		if got := p.Park(); got != Resumed {
			t.Errorf("normal: Park = %v, want Resumed", got)
		}
	})
	waitStatus(t, parked, Parked)
	waitStatus(t, resumedNormally, Parked)
	resumedNormally.Unpark()
	// Wait until the normally-resumed process finished so AbortAll sees
	// it in Done state, not Parked.
	waitStatus(t, resumedNormally, Done)
	r.AbortAll()
	r.Join()
}

func TestOutcomeNormalReturn(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	p := r.Spawn("ok", func(*P) {})
	r.Join()
	o, ok := r.Outcome(p.ID())
	if !ok || o.Err != nil {
		t.Fatalf("Outcome = %+v,%v, want nil error", o, ok)
	}
	if p.Status() != Done {
		t.Fatalf("Status = %v, want Done", p.Status())
	}
}

func TestOutcomePanicCaptured(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	p := r.Spawn("boom", func(*P) { panic("kaboom") })
	r.Join()
	o, ok := r.Outcome(p.ID())
	if !ok || o.Err == nil || !strings.Contains(o.Err.Error(), "kaboom") {
		t.Fatalf("Outcome = %+v,%v, want recorded panic", o, ok)
	}
	if p.Status() != Panicked {
		t.Fatalf("Status = %v, want Panicked", p.Status())
	}
}

func TestOutcomeUnknownPid(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	if _, ok := r.Outcome(42); ok {
		t.Fatal("Outcome(42) reported ok for unknown pid")
	}
}

func TestGetAndProcsOrdered(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	var ps []*P
	for i := 0; i < 5; i++ {
		ps = append(ps, r.Spawn("w", func(*P) {}))
	}
	r.Join()
	got := r.Procs()
	if len(got) != 5 {
		t.Fatalf("Procs returned %d, want 5", len(got))
	}
	for i, p := range got {
		if p.ID() != int64(i+1) {
			t.Fatalf("Procs[%d].ID = %d, want %d", i, p.ID(), i+1)
		}
	}
	if p, ok := r.Get(3); !ok || p != ps[2] {
		t.Fatal("Get(3) did not return the third process")
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("Get(99) reported ok")
	}
}

func TestStatusString(t *testing.T) {
	t.Parallel()
	cases := map[Status]string{
		Ready:      "ready",
		Parked:     "parked",
		Done:       "done",
		Panicked:   "panicked",
		Status(42): "Status(42)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int32(s), got, want)
		}
	}
}

func TestPString(t *testing.T) {
	t.Parallel()
	r := NewRuntime()
	p := r.Spawn("producer", func(*P) {})
	r.Join()
	if got := p.String(); got != "P1(producer)" {
		t.Fatalf("String = %q, want P1(producer)", got)
	}
}

// waitStatus polls until the process reaches the wanted status; the
// park transition happens on another goroutine, so tests must
// synchronise on the observable state instead of sleeping a guess.
func waitStatus(t *testing.T, p *P, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Status() != want {
		if time.Now().After(deadline) {
			t.Fatalf("process %v never reached status %v (now %v)", p, want, p.Status())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
