package monitor

import (
	"errors"
	"fmt"

	"robustmon/internal/pathexpr"
)

// Spec is the visible part of the augmented monitor declaration (§3,
// §4): the information the programmer supplies so the invisible part
// (data gathering + fault detection) can do its work. It mirrors the
// paper's declaration form
//
//	MonitorName: Monitor (type);
//	  Declarations of condition variables;
//	  Specification of procedure call orders;
//	  Declarations of monitor procedures;
type Spec struct {
	// Name identifies the monitor in events and reports.
	Name string
	// Kind is the §2.1 functional class.
	Kind Kind
	// Conditions declares the condition variables. Wait/Signal-Exit on
	// an undeclared condition is rejected.
	Conditions []string
	// Procedures declares the monitor procedures (informational; used
	// by tooling and validated against CallOrder symbols).
	Procedures []string
	// CallOrder optionally declares the partial ordering of procedure
	// calls in path-expression notation, e.g. "path Acquire ; Release
	// end". Required for ResourceAllocator monitors, whose user-level
	// faults are checked in real time against this declaration.
	CallOrder string
	// Rmax is the maximum number of resources (buffer capacity) for a
	// CommunicationCoordinator; R# starts at Rmax (all slots free).
	Rmax int
	// SendProc and ReceiveProc name the producer/consumer procedures of
	// a CommunicationCoordinator so the implementation can maintain R#
	// (a completed SendProc consumes a slot, a completed ReceiveProc
	// frees one) and the detector can apply FD-Rule 6 / ST-Rule 7.
	SendProc string
	// ReceiveProc is the consumer procedure name; see SendProc.
	ReceiveProc string
	// AcquireProc and ReleaseProc name the request/release procedures of
	// a ResourceAllocator so Algorithm-3 can maintain the Request-List
	// (§3.3.1 list 5). Optional: when empty, calling-order checking
	// relies solely on the CallOrder path expression.
	AcquireProc string
	// ReleaseProc is the release procedure name; see AcquireProc.
	ReleaseProc string
}

// Errors returned by spec validation and the monitor primitives.
var (
	// ErrSpec reports an invalid monitor declaration.
	ErrSpec = errors.New("monitor: invalid spec")
	// ErrUnknownCond reports a Wait or Signal-Exit on an undeclared
	// condition variable.
	ErrUnknownCond = errors.New("monitor: unknown condition variable")
	// ErrAborted reports that a blocked primitive was woken by runtime
	// shutdown (or a recovery policy) rather than by the protocol.
	ErrAborted = errors.New("monitor: process aborted while blocked")
)

// Validate checks the declaration and compiles the call-order path
// expression. It returns the compiled path (nil when no order is
// declared).
func (s Spec) Validate() (*pathexpr.Path, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrSpec)
	}
	if !s.Kind.Valid() {
		return nil, fmt.Errorf("%w: bad kind %d", ErrSpec, int(s.Kind))
	}
	seen := make(map[string]bool, len(s.Conditions))
	for _, c := range s.Conditions {
		if c == "" {
			return nil, fmt.Errorf("%w: empty condition name", ErrSpec)
		}
		if seen[c] {
			return nil, fmt.Errorf("%w: duplicate condition %q", ErrSpec, c)
		}
		seen[c] = true
	}
	if s.Kind == CommunicationCoordinator {
		if s.Rmax <= 0 {
			return nil, fmt.Errorf("%w: coordinator %q needs Rmax > 0, got %d", ErrSpec, s.Name, s.Rmax)
		}
		if s.SendProc == "" || s.ReceiveProc == "" {
			return nil, fmt.Errorf("%w: coordinator %q must declare SendProc and ReceiveProc", ErrSpec, s.Name)
		}
		if s.SendProc == s.ReceiveProc {
			return nil, fmt.Errorf("%w: coordinator %q: SendProc and ReceiveProc must differ", ErrSpec, s.Name)
		}
	}
	if s.Kind == ResourceAllocator && s.CallOrder == "" {
		return nil, fmt.Errorf("%w: allocator %q must declare a CallOrder path expression", ErrSpec, s.Name)
	}
	if s.CallOrder == "" {
		return nil, nil
	}
	path, err := pathexpr.Parse(s.CallOrder)
	if err != nil {
		return nil, fmt.Errorf("%w: call order: %v", ErrSpec, err)
	}
	if len(s.Procedures) > 0 {
		declared := make(map[string]bool, len(s.Procedures))
		for _, p := range s.Procedures {
			declared[p] = true
		}
		for _, sym := range path.Symbols() {
			if !declared[sym] {
				return nil, fmt.Errorf("%w: call order mentions undeclared procedure %q", ErrSpec, sym)
			}
		}
	}
	return path, nil
}
