package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/proc"
)

// Hook tests verify each injected deviation produces exactly the
// physically observable misbehaviour the §2.2 taxonomy describes. The
// detection of these misbehaviours is tested in internal/detect.

func TestHookEnterForceGrantViolatesMutex(t *testing.T) {
	t.Parallel()
	h := Hooks{Enter: func(pid int64, _ string, occupied bool) EnterAction {
		if occupied {
			return EnterForceGrant
		}
		return EnterDefault
	}}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	hold := make(chan struct{})
	r.Spawn("first", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "first inside", func() bool { return m.InsideCount() == 1 })
	entered := make(chan struct{})
	var observed int32
	r.Spawn("intruder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		// The holder is still blocked on <-hold, so both processes are
		// inside right now.
		atomic.StoreInt32(&observed, int32(m.InsideCount()))
		close(entered)
		_ = m.Exit(p, "Op")
	})
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("forced grant did not admit the intruder")
	}
	if got := atomic.LoadInt32(&observed); got != 2 {
		t.Fatalf("occupancy seen by intruder = %d, want 2 (mutex violated)", got)
	}
	close(hold)
	r.Join()
}

func TestHookEnterDropLosesProcess(t *testing.T) {
	t.Parallel()
	h := Hooks{Enter: func(int64, string, bool) EnterAction { return EnterDrop }}
	m, db := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()
	victim := r.Spawn("victim", func(p *proc.P) {
		_ = m.Enter(p, "Op") // lost forever
	})
	waitCond(t, "victim parked", func() bool { return victim.Status() == proc.Parked })
	if m.EntryLen() != 0 || m.InsideCount() != 0 {
		t.Fatalf("victim should be neither queued nor inside: eq=%d inside=%d",
			m.EntryLen(), m.InsideCount())
	}
	trace := db.Full()
	if len(trace) != 1 || trace[0].Flag != event.Blocked {
		t.Fatalf("trace = %v, want a single blocked Enter", trace)
	}
	r.AbortAll()
	r.Join()
}

func TestHookEnterForceBlockQueuesOnFreeMonitor(t *testing.T) {
	t.Parallel()
	h := Hooks{Enter: func(int64, string, bool) EnterAction { return EnterForceBlock }}
	m, db := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()
	victim := r.Spawn("victim", func(p *proc.P) {
		_ = m.Enter(p, "Op")
	})
	waitCond(t, "victim parked", func() bool { return victim.Status() == proc.Parked })
	if m.EntryLen() != 1 || m.InsideCount() != 0 {
		t.Fatalf("want queued-on-free-monitor: eq=%d inside=%d", m.EntryLen(), m.InsideCount())
	}
	trace := db.Full()
	if len(trace) != 1 || trace[0].Flag != event.Blocked {
		t.Fatalf("trace = %v, want one blocked Enter", trace)
	}
	r.AbortAll()
	r.Join()
}

func TestHookWaitNoBlockKeepsRunning(t *testing.T) {
	t.Parallel()
	h := Hooks{Wait: func(int64, string, string) WaitAction { return WaitNoBlock }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()
	done := make(chan struct{})
	r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		close(done) // reached without any signal: synchronisation lost
		_ = m.Exit(p, "Op")
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitNoBlock blocked the caller")
	}
	r.Join()
	if m.CondLen("ok") != 1 {
		t.Fatalf("CondLen(ok) = %d, want 1 (queued yet ran on)", m.CondLen("ok"))
	}
}

func TestHookWaitDropProcessNeitherQueuedNorRunning(t *testing.T) {
	t.Parallel()
	h := Hooks{Wait: func(int64, string, string) WaitAction { return WaitDrop }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()
	victim := r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Wait(p, "Op", "ok") // lost
	})
	waitCond(t, "victim parked", func() bool { return victim.Status() == proc.Parked })
	if m.CondLen("ok") != 0 || m.InsideCount() != 0 {
		t.Fatalf("victim tracked somewhere: cq=%d inside=%d", m.CondLen("ok"), m.InsideCount())
	}
	r.AbortAll()
	r.Join()
}

func TestHookWaitNoHandoffStrandsEntryQueue(t *testing.T) {
	t.Parallel()
	h := Hooks{Wait: func(int64, string, string) WaitAction { return WaitNoHandoff }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	inCh := make(chan struct{})
	goWait := make(chan struct{})
	r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		<-goWait
		_ = m.Wait(p, "Op", "ok")
	})
	<-inCh
	queued := r.Spawn("queued", func(p *proc.P) {
		_ = m.Enter(p, "Op")
	})
	waitCond(t, "second queued", func() bool { return m.EntryLen() == 1 })
	// Only now trigger the faulty Wait: the handoff it skips would have
	// admitted the queued process.
	close(goWait)
	waitCond(t, "monitor empty", func() bool { return m.InsideCount() == 0 })
	if m.EntryLen() != 1 {
		t.Fatalf("EntryLen = %d, want 1 (handoff skipped)", m.EntryLen())
	}
	if queued.Status() != proc.Parked {
		t.Fatalf("queued process status = %v, want parked forever", queued.Status())
	}
	r.AbortAll()
	r.Join()
}

func TestHookWaitDoubleHandoffAdmitsTwo(t *testing.T) {
	t.Parallel()
	h := Hooks{Wait: func(int64, string, string) WaitAction { return WaitDoubleHandoff }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	inCh := make(chan struct{})
	goWait := make(chan struct{})
	r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		<-goWait
		_ = m.Wait(p, "Op", "ok")
	})
	<-inCh
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		r.Spawn("queued", func(p *proc.P) {
			if err := m.Enter(p, "Op"); err != nil {
				return
			}
			<-release
			_ = m.Exit(p, "Op")
		})
	}
	waitCond(t, "two queued", func() bool { return m.EntryLen() == 2 })
	close(goWait)
	waitCond(t, "both admitted", func() bool { return m.InsideCount() == 2 })
	close(release)
	// Nobody signals "ok"; abort the waiter to finish.
	r.AbortAll()
	r.Join()
}

func TestHookWaitKeepLockMonitorNotReleased(t *testing.T) {
	t.Parallel()
	h := Hooks{Wait: func(int64, string, string) WaitAction { return WaitKeepLock }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	inCh := make(chan struct{})
	waiter := r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		_ = m.Wait(p, "Op", "ok")
	})
	<-inCh
	waitCond(t, "waiter parked", func() bool { return waiter.Status() == proc.Parked })
	if m.InsideCount() != 1 {
		t.Fatalf("InsideCount = %d, want 1 (lock kept while parked)", m.InsideCount())
	}
	if m.CondLen("ok") != 1 {
		t.Fatalf("CondLen = %d, want 1", m.CondLen("ok"))
	}
	r.AbortAll()
	r.Join()
}

func TestHookSignalNoWakeStrandsWaiters(t *testing.T) {
	t.Parallel()
	h := Hooks{SignalExit: func(int64, string, string) SignalAction { return SignalNoWake }}
	m, db := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	inCh := make(chan struct{})
	waiter := r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		_ = m.Wait(p, "Op", "ok")
	})
	<-inCh
	waitCond(t, "waiter on cond", func() bool { return m.CondLen("ok") == 1 })
	r.Spawn("signaler", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.SignalExit(p, "Op", "ok")
	})
	waitCond(t, "monitor free", func() bool { return m.InsideCount() == 0 })
	if m.CondLen("ok") != 1 {
		t.Fatalf("CondLen = %d, want 1 (waiter stranded)", m.CondLen("ok"))
	}
	if waiter.Status() != proc.Parked {
		t.Fatalf("waiter = %v, want parked", waiter.Status())
	}
	// The recorded flag must reflect what the implementation actually
	// did (resumed nobody), not what it should have done.
	for _, e := range db.Full() {
		if e.Type == event.SignalExit && e.Flag != event.Blocked {
			t.Fatalf("Signal-Exit recorded flag %d, want 0", e.Flag)
		}
	}
	r.AbortAll()
	r.Join()
}

func TestHookSignalKeepLockLeavesStaleOccupancy(t *testing.T) {
	t.Parallel()
	h := Hooks{SignalExit: func(int64, string, string) SignalAction { return SignalKeepLock }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()
	r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op") // exits but the lock is kept
	})
	r.Join()
	if m.InsideCount() != 1 {
		t.Fatalf("InsideCount = %d, want 1 stale occupant", m.InsideCount())
	}
}

func TestHookSignalDoubleWakeAdmitsTwo(t *testing.T) {
	t.Parallel()
	h := Hooks{SignalExit: func(_ int64, _ string, cond string) SignalAction {
		if cond == "ok" {
			return SignalDoubleWake
		}
		return SignalDefault
	}}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	// Both resumed processes rendezvous inside the monitor before
	// exiting, so each can observe the double occupancy directly.
	var arrive, depart sync.WaitGroup
	arrive.Add(2)
	depart.Add(2)
	var seenByCond, seenByEQ int32
	rendezvous := func(out *int32) {
		arrive.Done()
		arrive.Wait() // both are now inside
		atomic.StoreInt32(out, int32(m.InsideCount()))
		depart.Done()
		depart.Wait() // neither exits before both have looked
	}

	inCh := make(chan struct{})
	r.Spawn("condWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		rendezvous(&seenByCond)
		_ = m.Exit(p, "Op")
	})
	<-inCh
	waitCond(t, "cond waiter queued", func() bool { return m.CondLen("ok") == 1 })

	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.SignalExit(p, "Op", "ok")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })
	r.Spawn("eqWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		rendezvous(&seenByEQ)
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "eq waiter queued", func() bool { return m.EntryLen() == 1 })
	close(hold)
	r.Join()
	if seenByCond != 2 || seenByEQ != 2 {
		t.Fatalf("occupancy seen = (%d,%d), want (2,2): double wake not concurrent",
			seenByCond, seenByEQ)
	}
}

func TestHookSkipHandoffStarvesVictim(t *testing.T) {
	t.Parallel()
	var victimPid int64 = 2
	h := Hooks{SkipHandoff: func(pid int64) bool { return pid == victimPid }}
	m, _ := newTestMonitor(t, managerSpec(), WithHooks(h))
	r := proc.NewRuntime()

	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) { // pid 1
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })
	victim := r.Spawn("victim", func(p *proc.P) { // pid 2
		_ = m.Enter(p, "Op")
	})
	waitCond(t, "victim queued", func() bool { return m.EntryLen() == 1 })
	other := r.Spawn("other", func(p *proc.P) { // pid 3
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "both queued", func() bool { return m.EntryLen() == 2 })
	close(hold)
	waitCond(t, "other finished", func() bool { return other.Status() == proc.Done })
	if victim.Status() != proc.Parked || m.EntryLen() != 1 {
		t.Fatalf("victim = %v eq=%d, want parked,1 (overtaken and starved)",
			victim.Status(), m.EntryLen())
	}
	r.AbortAll()
	r.Join()
}

func TestInjectBareEntryEmitsNoEvent(t *testing.T) {
	t.Parallel()
	m, db := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	r.Spawn("ghost", func(p *proc.P) {
		m.InjectBareEntry(p, "Op")
		_ = m.Exit(p, "Op")
	})
	r.Join()
	trace := db.Full()
	if len(trace) != 1 || trace[0].Type != event.SignalExit {
		t.Fatalf("trace = %v, want only the Signal-Exit", trace)
	}
}
