package monitor

import (
	"sync"
	"testing"

	"robustmon/internal/proc"
)

func TestResetAbortsAllWaiters(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	// One process inside, one on the entry queue, one on a condition.
	inCh := make(chan struct{})
	r.Spawn("condWaiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		_ = m.Wait(p, "Op", "ok") // will be aborted
	})
	<-inCh
	waitCond(t, "cond waiter queued", func() bool { return m.CondLen("ok") == 1 })

	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		// After the reset this exit targets a cleared monitor; it must
		// not panic or corrupt state.
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })
	r.Spawn("eqWaiter", func(p *proc.P) {
		_ = m.Enter(p, "Op") // will be aborted
	})
	waitCond(t, "eq waiter queued", func() bool { return m.EntryLen() == 1 })

	m.Reset()
	if m.InsideCount() != 0 || m.EntryLen() != 0 || m.CondLen("ok") != 0 {
		t.Fatalf("state after reset: inside=%d eq=%d cq=%d",
			m.InsideCount(), m.EntryLen(), m.CondLen("ok"))
	}
	close(hold)
	r.Join()

	// The monitor must be fully serviceable again.
	r2 := proc.NewRuntime()
	served := false
	r2.Spawn("fresh", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		served = true
		_ = m.Exit(p, "Op")
	})
	r2.Join()
	if !served {
		t.Fatal("monitor unusable after reset")
	}
}

func TestResetRestoresCoordinatorResources(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, coordSpec())
	r := proc.NewRuntime()
	runInside(r, m, "p", "Send", nil)
	r.Join()
	if m.Resources() == m.Spec().Rmax {
		t.Fatal("setup: a send should have consumed a slot")
	}
	m.Reset()
	if got := m.Resources(); got != m.Spec().Rmax {
		t.Fatalf("Resources after reset = %d, want Rmax=%d", got, m.Spec().Rmax)
	}
}

// TestFreezeSnapshotConsistency: a snapshot taken under Freeze must be
// internally consistent (every process accounted for exactly once) no
// matter when the freeze lands in a busy schedule.
func TestFreezeSnapshotConsistency(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	const workers, opsEach = 6, 200
	for i := 0; i < workers; i++ {
		r.Spawn("w", func(p *proc.P) {
			for j := 0; j < opsEach; j++ {
				if err := m.Enter(p, "Op"); err != nil {
					return
				}
				_ = m.Exit(p, "Op")
			}
		})
	}
	done := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			m.Freeze()
			snap := m.Snapshot()
			m.Thaw()
			seen := make(map[int64]int)
			for _, e := range snap.EQ {
				seen[e.Pid]++
			}
			for _, q := range snap.CQ {
				for _, e := range q {
					seen[e.Pid]++
				}
			}
			for _, e := range snap.Running {
				seen[e.Pid]++
			}
			for pid, n := range seen {
				if n > 1 {
					t.Errorf("P%d appears %d times in one snapshot: %v", pid, n, snap)
					return
				}
			}
			if len(snap.Running) > 1 {
				t.Errorf("snapshot shows %d processes inside: %v", len(snap.Running), snap)
				return
			}
		}
	}()
	r.Join()
	close(done)
	snapper.Wait()
}
