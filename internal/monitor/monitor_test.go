package monitor

import (
	"errors"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/history"
	"robustmon/internal/proc"
)

func coordSpec() Spec {
	return Spec{
		Name:        "buf",
		Kind:        CommunicationCoordinator,
		Conditions:  []string{"notFull", "notEmpty"},
		Procedures:  []string{"Send", "Receive"},
		Rmax:        2,
		SendProc:    "Send",
		ReceiveProc: "Receive",
	}
}

func managerSpec() Spec {
	return Spec{
		Name:       "rw",
		Kind:       OperationManager,
		Conditions: []string{"ok"},
		Procedures: []string{"Op"},
	}
}

func newTestMonitor(t *testing.T, spec Spec, opts ...Option) (*Monitor, *history.DB) {
	t.Helper()
	db := history.New(history.WithFullTrace())
	m, err := New(spec, append([]Option{WithRecorder(db)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, db
}

// enterSync spawns a process that enters, runs body inside the monitor,
// and exits.
func runInside(r *proc.Runtime, m *Monitor, name, procName string, body func(p *proc.P)) *proc.P {
	return r.Spawn(name, func(p *proc.P) {
		if err := m.Enter(p, procName); err != nil {
			return
		}
		if body != nil {
			body(p)
		}
		_ = m.Exit(p, procName)
	})
}

func waitCond(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestKindString(t *testing.T) {
	t.Parallel()
	cases := map[Kind]string{
		CommunicationCoordinator: "communication-coordinator",
		ResourceAllocator:        "resource-access-right-allocator",
		OperationManager:         "resource-operation-manager",
		Kind(9):                  "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(0).Valid() || Kind(4).Valid() || !ResourceAllocator.Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mut  func(*Spec)
		ok   bool
	}{
		{"valid coordinator", func(s *Spec) {}, true},
		{"empty name", func(s *Spec) { s.Name = "" }, false},
		{"bad kind", func(s *Spec) { s.Kind = Kind(9) }, false},
		{"empty condition", func(s *Spec) { s.Conditions = []string{""} }, false},
		{"dup condition", func(s *Spec) { s.Conditions = []string{"c", "c"} }, false},
		{"coordinator without Rmax", func(s *Spec) { s.Rmax = 0 }, false},
		{"coordinator without send proc", func(s *Spec) { s.SendProc = "" }, false},
		{"send==receive", func(s *Spec) { s.ReceiveProc = s.SendProc }, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := coordSpec()
			tc.mut(&s)
			_, err := s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrSpec) {
					t.Fatalf("error %v does not wrap ErrSpec", err)
				}
			}
		})
	}
}

func TestSpecAllocatorNeedsCallOrder(t *testing.T) {
	t.Parallel()
	s := Spec{Name: "a", Kind: ResourceAllocator}
	if _, err := s.Validate(); err == nil {
		t.Fatal("allocator without CallOrder accepted")
	}
	s.CallOrder = "path Acquire ; Release end"
	p, err := s.Validate()
	if err != nil || p == nil {
		t.Fatalf("Validate = %v, path %v", err, p)
	}
}

func TestSpecCallOrderUndeclaredProcedure(t *testing.T) {
	t.Parallel()
	s := Spec{
		Name: "a", Kind: ResourceAllocator,
		Procedures: []string{"Acquire"},
		CallOrder:  "path Acquire ; Release end",
	}
	if _, err := s.Validate(); err == nil {
		t.Fatal("call order mentioning undeclared procedure accepted")
	}
}

func TestSpecBadCallOrderSyntax(t *testing.T) {
	t.Parallel()
	s := Spec{Name: "a", Kind: ResourceAllocator, CallOrder: "path ; end"}
	if _, err := s.Validate(); err == nil {
		t.Fatal("syntactically invalid call order accepted")
	}
}

func TestMutualExclusionUnderContention(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	var mu sync.Mutex
	insideNow, maxInside, total := 0, 0, 0
	const n = 16
	for i := 0; i < n; i++ {
		runInside(r, m, "worker", "Op", func(*proc.P) {
			mu.Lock()
			insideNow++
			if insideNow > maxInside {
				maxInside = insideNow
			}
			total++
			mu.Unlock()
			mu.Lock()
			insideNow--
			mu.Unlock()
		})
	}
	r.Join()
	if maxInside != 1 {
		t.Fatalf("max simultaneous occupancy = %d, want 1", maxInside)
	}
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	if m.InsideCount() != 0 || m.EntryLen() != 0 {
		t.Fatalf("monitor not empty after run: inside=%d eq=%d", m.InsideCount(), m.EntryLen())
	}
}

func TestEnterRecordsFlagOneWhenFree(t *testing.T) {
	t.Parallel()
	m, db := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	runInside(r, m, "solo", "Op", nil)
	r.Join()
	trace := db.Full()
	if len(trace) != 2 {
		t.Fatalf("trace = %v, want Enter + Signal-Exit", trace)
	}
	if trace[0].Type != event.Enter || trace[0].Flag != event.Completed {
		t.Fatalf("first event = %v, want Enter flag 1", trace[0])
	}
	if trace[1].Type != event.SignalExit || trace[1].Cond != "" {
		t.Fatalf("second event = %v, want bare Signal-Exit", trace[1])
	}
}

func TestEnterBlocksAndRecordsFlagZero(t *testing.T) {
	t.Parallel()
	m, db := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	release := make(chan struct{})
	first := r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			t.Errorf("holder Enter: %v", err)
			return
		}
		<-release
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })

	second := runInside(r, m, "waiter", "Op", nil)
	waitCond(t, "waiter queued", func() bool { return m.EntryLen() == 1 })
	if second.Status() != proc.Parked {
		t.Fatalf("second status = %v, want parked", second.Status())
	}
	close(release)
	r.Join()
	_ = first

	trace := db.Full()
	// holder Enter(1), waiter Enter(0), holder Signal-Exit, waiter Signal-Exit
	if len(trace) != 4 {
		t.Fatalf("trace length = %d, want 4: %v", len(trace), trace)
	}
	if trace[1].Type != event.Enter || trace[1].Flag != event.Blocked {
		t.Fatalf("second event = %v, want blocked Enter", trace[1])
	}
	// The blocked waiter's resume must emit no new event (§3.3.1).
	enters := 0
	for _, e := range trace {
		if e.Type == event.Enter {
			enters++
		}
	}
	if enters != 2 {
		t.Fatalf("saw %d Enter events, want 2 (no resume events)", enters)
	}
}

func TestWaitHandsOffToEntryQueue(t *testing.T) {
	t.Parallel()
	m, db := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	// Only spawn the signaler once the waiter is on the condition queue,
	// so the interleaving is deterministic.
	waitCond(t, "waiter on cond queue", func() bool { return m.CondLen("ok") == 1 })

	r.Spawn("signaler", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		_ = m.SignalExit(p, "Op", "ok")
	})
	r.Join()

	trace := db.Full()
	// waiter Enter(1); waiter Wait; signaler Enter(1); signaler
	// Signal-Exit(ok,1); waiter resumes (no event); waiter Signal-Exit.
	if len(trace) != 5 {
		t.Fatalf("trace = %v, want 5 events", trace)
	}
	if trace[1].Type != event.Wait || trace[1].Cond != "ok" {
		t.Fatalf("second event = %v, want Wait(ok)", trace[1])
	}
	se := trace[3]
	if se.Type != event.SignalExit || se.Flag != event.Completed || se.Cond != "ok" {
		t.Fatalf("fourth event = %v, want Signal-Exit(ok) flag 1", se)
	}
	if m.InsideCount() != 0 || m.CondLen("ok") != 0 {
		t.Fatal("monitor not drained")
	}
}

func TestSignalExitWithEmptyCondQueuePassesToEQ(t *testing.T) {
	t.Parallel()
	m, db := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	hold := make(chan struct{})
	r.Spawn("first", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.SignalExit(p, "Op", "ok") // nobody waits on ok
	})
	waitCond(t, "first inside", func() bool { return m.InsideCount() == 1 })
	runInside(r, m, "second", "Op", nil)
	waitCond(t, "second queued", func() bool { return m.EntryLen() == 1 })
	close(hold)
	r.Join()

	for _, e := range db.Full() {
		if e.Type == event.SignalExit && e.Cond == "ok" && e.Flag != event.Blocked {
			t.Fatalf("Signal-Exit on empty cond queue has flag %d, want 0", e.Flag)
		}
	}
}

func TestWaitUnknownCondition(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	var gotErr error
	r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		gotErr = m.Wait(p, "Op", "nonesuch")
		_ = m.Exit(p, "Op")
	})
	r.Join()
	if !errors.Is(gotErr, ErrUnknownCond) {
		t.Fatalf("Wait on unknown cond = %v, want ErrUnknownCond", gotErr)
	}
}

func TestSignalExitUnknownCondition(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()
	var gotErr error
	r.Spawn("p", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		gotErr = m.SignalExit(p, "Op", "nonesuch")
		_ = m.Exit(p, "Op")
	})
	r.Join()
	if !errors.Is(gotErr, ErrUnknownCond) {
		t.Fatalf("SignalExit on unknown cond = %v, want ErrUnknownCond", gotErr)
	}
}

func TestAbortedWhileQueuedReturnsErrAborted(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })

	var enterErr error
	errCh := make(chan struct{})
	r.Spawn("victim", func(p *proc.P) {
		enterErr = m.Enter(p, "Op")
		close(errCh)
	})
	waitCond(t, "victim queued", func() bool { return m.EntryLen() == 1 })
	r.AbortAll()
	<-errCh
	if !errors.Is(enterErr, ErrAborted) {
		t.Fatalf("aborted Enter = %v, want ErrAborted", enterErr)
	}
	if m.EntryLen() != 0 {
		t.Fatal("aborted process left a stale entry-queue record")
	}
	close(hold)
	r.Join()
}

func TestCoordinatorResourceAccounting(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, coordSpec())
	r := proc.NewRuntime()
	if m.Resources() != 2 {
		t.Fatalf("initial R# = %d, want Rmax=2", m.Resources())
	}
	runInside(r, m, "p1", "Send", nil)
	r.Join()
	if m.Resources() != 1 {
		t.Fatalf("R# after one Send = %d, want 1", m.Resources())
	}
	r2 := proc.NewRuntime()
	runInside(r2, m, "c1", "Receive", nil)
	r2.Join()
	if m.Resources() != 2 {
		t.Fatalf("R# after Receive = %d, want 2", m.Resources())
	}
}

func TestSnapshotReflectsQueues(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	inCh := make(chan struct{})
	r.Spawn("waiter", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(inCh)
		if err := m.Wait(p, "Op", "ok"); err != nil {
			return
		}
		_ = m.Exit(p, "Op")
	})
	<-inCh
	waitCond(t, "waiter on cond queue", func() bool { return m.CondLen("ok") == 1 })

	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.SignalExit(p, "Op", "ok")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })
	runInside(r, m, "queued", "Op", nil)
	waitCond(t, "queued on EQ", func() bool { return m.EntryLen() == 1 })

	m.Freeze()
	snap := m.Snapshot()
	m.Thaw()

	if got := snap.CQPids("ok"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("snapshot CQ[ok] = %v, want [1]", got)
	}
	if got := snap.EQPids(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("snapshot EQ = %v, want [3]", got)
	}
	if got := snap.RunningPids(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("snapshot Running = %v, want [2]", got)
	}
	close(hold)
	r.Join()
}

func TestFreezeBlocksPrimitives(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	m.Freeze()
	started := make(chan struct{})
	entered := make(chan struct{})
	r.Spawn("p", func(p *proc.P) {
		close(started)
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		close(entered)
		_ = m.Exit(p, "Op")
	})
	<-started
	select {
	case <-entered:
		t.Fatal("Enter completed while frozen")
	case <-time.After(20 * time.Millisecond):
	}
	m.Thaw()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Enter did not complete after Thaw")
	}
	r.Join()
}

func TestNilRecorderRunsBare(t *testing.T) {
	t.Parallel()
	m, err := New(managerSpec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r := proc.NewRuntime()
	runInside(r, m, "p", "Op", nil)
	r.Join()
	// Nothing to assert beyond "does not crash": bare mode is the
	// no-extension baseline.
	if m.InsideCount() != 0 {
		t.Fatal("monitor not empty")
	}
}

func TestFIFOEntryOrder(t *testing.T) {
	t.Parallel()
	m, _ := newTestMonitor(t, managerSpec())
	r := proc.NewRuntime()

	var order []int64
	var mu sync.Mutex
	hold := make(chan struct{})
	r.Spawn("holder", func(p *proc.P) {
		if err := m.Enter(p, "Op"); err != nil {
			return
		}
		<-hold
		_ = m.Exit(p, "Op")
	})
	waitCond(t, "holder inside", func() bool { return m.InsideCount() == 1 })

	for i := 0; i < 5; i++ {
		runInside(r, m, "w", "Op", func(p *proc.P) {
			mu.Lock()
			order = append(order, p.ID())
			mu.Unlock()
		})
		want := i + 1
		waitCond(t, "waiter queued", func() bool { return m.EntryLen() == want })
	}
	close(hold)
	r.Join()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("entry order not FIFO: %v", order)
		}
	}
}
