// Package monitor implements the paper's augmented monitor construct:
// a Hoare-style monitor (Enter / Wait / Signal-Exit primitives over an
// entry queue and condition queues) whose primitives double as the
// data-gathering routines of §4 — every invocation emits a scheduling
// event to the history database — and whose internals expose a
// stop-the-world gate and state snapshots for the periodic checking
// routine, plus injection hooks that realise the implementation-level
// faults of the §2.2 taxonomy.
package monitor

import "fmt"

// Kind is the functional classification of a monitor (§2.1). The kind
// selects which detection algorithms apply: Algorithm-2
// (resource-state consistency) runs for communication coordinators,
// Algorithm-3 (calling orders) and the real-time order check run for
// resource-access-right allocators.
type Kind int

// The three monitor classes of §2.1.
const (
	// CommunicationCoordinator mediates data exchange between process
	// pairs through a bounded buffer (Send/Receive); subject to the
	// integrity constraints of §2.1(1-4).
	CommunicationCoordinator Kind = iota + 1
	// ResourceAllocator hands out access rights (Request/Release) and
	// declares a partial order on its procedures; the use of the
	// resource itself happens outside the monitor.
	ResourceAllocator
	// OperationManager combines the resource and its operations in one
	// shared module (implicit synchronisation).
	OperationManager
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case CommunicationCoordinator:
		return "communication-coordinator"
	case ResourceAllocator:
		return "resource-access-right-allocator"
	case OperationManager:
		return "resource-operation-manager"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is one of the three classes.
func (k Kind) Valid() bool {
	return k >= CommunicationCoordinator && k <= OperationManager
}
