package monitor

import (
	"fmt"
	"sync"
	"time"

	"robustmon/internal/clock"
	"robustmon/internal/event"
	"robustmon/internal/pathexpr"
	"robustmon/internal/proc"
	"robustmon/internal/queue"
	"robustmon/internal/state"
)

// Recorder receives scheduling events from the data-gathering routine.
// history.DB implements it; detect wraps it to add real-time checks.
// A nil recorder disables recording entirely — that configuration is
// the paper's "monitor without the extension" baseline in Table 1.
//
// Many monitors may share one Recorder: the sharded history database
// routes each event to the per-monitor shard named by Event.Monitor
// (which record fills in before forwarding), so concurrently running
// monitors wired to the same database never contend on a common lock.
type Recorder interface {
	// Append stores the event, assigns its sequence number, and returns
	// the stored copy.
	Append(event.Event) event.Event
}

type insideInfo struct {
	proc  string
	since time.Time
}

// Monitor is one augmented monitor instance. Construct with New. All
// exported methods are safe for concurrent use by multiple processes.
type Monitor struct {
	spec  Spec
	path  *pathexpr.Path
	clk   clock.Clock
	rec   Recorder
	hooks Hooks

	// gate is the checkpoint gate: primitives hold it for read during
	// their critical sections (never while parked), the detector holds
	// it for write while snapshotting, so a frozen monitor cannot
	// change state or emit events.
	gate sync.RWMutex

	mu        sync.Mutex
	entryQ    queue.TimedFIFO
	conds     map[string]*queue.TimedFIFO
	inside    map[int64]insideInfo
	parked    map[int64]*proc.P
	resources int
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithClock sets the clock (default: the wall clock).
func WithClock(c clock.Clock) Option {
	return func(m *Monitor) { m.clk = c }
}

// WithRecorder attaches the history database (or a checking tee). A
// monitor without a recorder runs bare, with no detection extension.
func WithRecorder(r Recorder) Option {
	return func(m *Monitor) { m.rec = r }
}

// WithHooks installs fault-injection hooks.
func WithHooks(h Hooks) Option {
	return func(m *Monitor) { m.hooks = h }
}

// New validates the spec and returns a ready monitor.
func New(spec Spec, opts ...Option) (*Monitor, error) {
	path, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		spec:   spec,
		path:   path,
		clk:    clock.Real{},
		conds:  make(map[string]*queue.TimedFIFO, len(spec.Conditions)),
		inside: make(map[int64]insideInfo, 2),
		parked: make(map[int64]*proc.P, 8),
	}
	for _, c := range spec.Conditions {
		m.conds[c] = &queue.TimedFIFO{}
	}
	if spec.Kind == CommunicationCoordinator {
		m.resources = spec.Rmax
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Name returns the monitor name.
func (m *Monitor) Name() string { return m.spec.Name }

// Spec returns a copy of the declaration.
func (m *Monitor) Spec() Spec { return m.spec }

// Path returns the compiled call-order declaration (nil when none).
func (m *Monitor) Path() *pathexpr.Path { return m.path }

// Enter requests entry to the monitor from procedure procName. It
// blocks while the monitor is occupied and returns once the caller
// holds the monitor (or ErrAborted if the process was aborted while
// queued).
func (m *Monitor) Enter(p *proc.P, procName string) error {
	m.gate.RLock()
	m.mu.Lock()
	now := m.clk.Now()
	occupied := len(m.inside) > 0
	action := m.hooks.enterAction(p.ID(), procName, occupied)

	grant := action == EnterForceGrant ||
		(action == EnterDefault && !occupied && m.entryQ.Empty())
	if grant {
		m.inside[p.ID()] = insideInfo{proc: procName, since: now}
		m.record(event.Event{
			Type: event.Enter, Pid: p.ID(), Proc: procName,
			Flag: event.Completed, Time: now,
		})
		m.mu.Unlock()
		m.gate.RUnlock()
		return nil
	}

	m.record(event.Event{
		Type: event.Enter, Pid: p.ID(), Proc: procName,
		Flag: event.Blocked, Time: now,
	})
	if action != EnterDrop {
		m.entryQ.Push(p.ID(), procName, now)
		m.parked[p.ID()] = p
	}
	m.mu.Unlock()
	m.gate.RUnlock()

	// Park outside the gate so a frozen world never deadlocks on a
	// blocked process. A dropped process parks with no one to wake it:
	// that is fault I.a.2, resolvable only by runtime abort.
	if p.Park() == proc.Aborted {
		m.forget(p.ID())
		return ErrAborted
	}
	return nil
}

// Wait blocks the calling process on the named condition queue and —
// under the correct protocol — passes the monitor to the head of the
// entry queue or releases it. The caller must be inside the monitor.
func (m *Monitor) Wait(p *proc.P, procName, cond string) error {
	m.gate.RLock()
	m.mu.Lock()
	cq, ok := m.conds[cond]
	if !ok {
		m.mu.Unlock()
		m.gate.RUnlock()
		return fmt.Errorf("%w: %q on monitor %q", ErrUnknownCond, cond, m.spec.Name)
	}
	now := m.clk.Now()
	action := m.hooks.waitAction(p.ID(), procName, cond)
	m.record(event.Event{
		Type: event.Wait, Pid: p.ID(), Proc: procName, Cond: cond,
		Flag: event.Blocked, Time: now,
	})

	var wakes []*proc.P
	blockCaller := true
	switch action {
	case WaitNoBlock:
		// Fault I.b.1: queued on the condition yet keeps running inside.
		cq.Push(p.ID(), procName, now)
		blockCaller = false
	case WaitDrop:
		// Fault I.b.2: neither queued nor running; monitor handed off.
		delete(m.inside, p.ID())
		wakes = m.handoff(now, 1)
	case WaitNoHandoff:
		// Fault I.b.3: caller blocks but the entry queue is not served.
		cq.Push(p.ID(), procName, now)
		m.parked[p.ID()] = p
		delete(m.inside, p.ID())
	case WaitDoubleHandoff:
		// Fault I.b.5: two entry waiters resumed at once.
		cq.Push(p.ID(), procName, now)
		m.parked[p.ID()] = p
		delete(m.inside, p.ID())
		wakes = m.handoff(now, 2)
	case WaitKeepLock:
		// Fault I.b.6: caller blocks but the monitor is not released.
		cq.Push(p.ID(), procName, now)
		m.parked[p.ID()] = p
		// p stays in the inside set: the monitor is still "held".
	default:
		cq.Push(p.ID(), procName, now)
		m.parked[p.ID()] = p
		delete(m.inside, p.ID())
		wakes = m.handoff(now, 1)
	}
	m.mu.Unlock()
	m.gate.RUnlock()

	for _, w := range wakes {
		w.Unpark()
	}
	if !blockCaller {
		return nil
	}
	if p.Park() == proc.Aborted {
		m.forget(p.ID())
		return ErrAborted
	}
	return nil
}

// SignalExit signals the named condition (resuming its head waiter if
// any, else the head of the entry queue) and leaves the monitor — the
// combined primitive of §2. An empty cond is a pure Exit.
func (m *Monitor) SignalExit(p *proc.P, procName, cond string) error {
	m.gate.RLock()
	m.mu.Lock()
	var cq *queue.TimedFIFO
	if cond != "" {
		var ok bool
		cq, ok = m.conds[cond]
		if !ok {
			m.mu.Unlock()
			m.gate.RUnlock()
			return fmt.Errorf("%w: %q on monitor %q", ErrUnknownCond, cond, m.spec.Name)
		}
	}
	now := m.clk.Now()
	action := m.hooks.signalAction(p.ID(), procName, cond)

	var wakes []*proc.P
	flag := event.Blocked
	switch action {
	case SignalNoWake:
		// Fault I.c.1: monitor released, nobody resumed.
		delete(m.inside, p.ID())
	case SignalKeepLock:
		// Fault I.c.2: caller exits but the monitor is not released —
		// the stale occupancy blocks everyone.
	case SignalDoubleWake:
		// Fault I.c.3: a condition waiter and an entry waiter both run.
		if cq != nil && !cq.Empty() {
			if w, ok := cq.Pop(); ok {
				flag = event.Completed
				m.admit(w, now, &wakes)
			}
		}
		wakes = append(wakes, m.handoff(now, 1)...)
		delete(m.inside, p.ID())
	default:
		if cq != nil && !cq.Empty() {
			w, _ := cq.Pop()
			flag = event.Completed
			m.admit(w, now, &wakes)
		} else {
			wakes = m.handoff(now, 1)
		}
		delete(m.inside, p.ID())
	}

	m.record(event.Event{
		Type: event.SignalExit, Pid: p.ID(), Proc: procName, Cond: cond,
		Flag: flag, Time: now,
	})
	if m.spec.Kind == CommunicationCoordinator {
		switch procName {
		case m.spec.SendProc:
			m.resources--
		case m.spec.ReceiveProc:
			m.resources++
		}
	}
	m.mu.Unlock()
	m.gate.RUnlock()

	for _, w := range wakes {
		w.Unpark()
	}
	return nil
}

// Exit leaves the monitor without signalling any condition.
func (m *Monitor) Exit(p *proc.P, procName string) error {
	return m.SignalExit(p, procName, "")
}

// InjectBareEntry places the process inside the monitor without
// invoking the entry protocol and without emitting an event — fault
// I.a.4, "entry is not observed". It exists only as a fault-injection
// surface for the robustness experiment.
func (m *Monitor) InjectBareEntry(p *proc.P, procName string) {
	m.gate.RLock()
	m.mu.Lock()
	m.inside[p.ID()] = insideInfo{proc: procName, since: m.clk.Now()}
	m.mu.Unlock()
	m.gate.RUnlock()
}

// admit moves a dequeued waiter into the monitor and schedules its
// wake-up. Caller holds m.mu.
func (m *Monitor) admit(w queue.Waiter, now time.Time, wakes *[]*proc.P) {
	m.inside[w.Pid] = insideInfo{proc: w.Proc, since: now}
	if p := m.parked[w.Pid]; p != nil {
		delete(m.parked, w.Pid)
		*wakes = append(*wakes, p)
	}
}

// handoff pops up to n entry-queue waiters (skipping starved victims
// per hooks) and admits them. Caller holds m.mu.
func (m *Monitor) handoff(now time.Time, n int) []*proc.P {
	var wakes []*proc.P
	for ; n > 0; n-- {
		w, ok := m.popEntry()
		if !ok {
			break
		}
		m.admit(w, now, &wakes)
	}
	return wakes
}

// popEntry removes the first entry-queue waiter not vetoed by the
// SkipHandoff hook. Caller holds m.mu.
func (m *Monitor) popEntry() (queue.Waiter, bool) {
	for _, w := range m.entryQ.Snapshot() {
		if m.hooks.skip(w.Pid) {
			continue
		}
		return m.entryQ.Remove(w.Pid)
	}
	return queue.Waiter{}, false
}

// record appends an event to the history database (no-op when the
// monitor runs bare). Caller holds m.mu and the gate read lock, so
// event order is consistent with state changes.
func (m *Monitor) record(e event.Event) {
	if m.rec == nil {
		return
	}
	e.Monitor = m.spec.Name
	m.rec.Append(e)
}

// forget removes an aborted process from all bookkeeping so shutdown
// does not leave stale queue entries behind.
func (m *Monitor) forget(pid int64) {
	m.gate.RLock()
	m.mu.Lock()
	m.entryQ.Remove(pid)
	for _, cq := range m.conds {
		cq.Remove(pid)
	}
	delete(m.parked, pid)
	delete(m.inside, pid)
	m.mu.Unlock()
	m.gate.RUnlock()
}

// Reset forcibly reinitialises the monitor: every queued or waiting
// process is aborted (its blocked primitive returns ErrAborted), the
// queues and the inside set are cleared, and R# is restored to Rmax.
// Recovery policies (§5 future work) use it to restore normal operation
// after a detected fault. Reset alone is only checkpoint-safe against a
// stopped world — it does not coordinate with a detector's in-flight
// snapshot or drain of this monitor; the shard-local online path is
// Detector.RequestReset, which linearises the reset against checkpoints
// and calls ResetFrozen under its own freeze.
func (m *Monitor) Reset() {
	m.gate.RLock()
	parked := m.resetLocked()
	m.gate.RUnlock()
	for _, p := range parked {
		p.Abort()
	}
}

// ResetFrozen is Reset for a caller that already holds this monitor's
// freeze (the checkpoint gate's write lock): the gate is not
// re-acquired, so the reset lands atomically inside the caller's frozen
// window — between the freeze and the thaw no primitive can observe a
// half-reset monitor. It returns the processes that were parked on the
// monitor's queues; the caller must Abort them (Abort never blocks, so
// before or after Thaw both work — the woken processes unwind only once
// the monitor thaws).
func (m *Monitor) ResetFrozen() []*proc.P {
	return m.resetLocked()
}

// resetLocked clears the queues, the inside set and R#, and returns the
// previously parked processes for the caller to abort. The caller holds
// the gate (read side for Reset, write side for ResetFrozen); m.mu is
// taken here.
func (m *Monitor) resetLocked() []*proc.P {
	m.mu.Lock()
	parked := make([]*proc.P, 0, len(m.parked))
	for _, p := range m.parked {
		parked = append(parked, p)
	}
	m.parked = make(map[int64]*proc.P, 8)
	m.entryQ.Clear()
	for _, cq := range m.conds {
		cq.Clear()
	}
	m.inside = make(map[int64]insideInfo, 2)
	if m.spec.Kind == CommunicationCoordinator {
		m.resources = m.spec.Rmax
	}
	m.mu.Unlock()
	return parked
}

// Freeze stops the world for this monitor: it blocks until no primitive
// is mid-critical-section and prevents new ones from starting. The
// paper's checking routine freezes all monitored monitors, snapshots
// and drains, then Thaws.
func (m *Monitor) Freeze() { m.gate.Lock() }

// Thaw reverses Freeze.
func (m *Monitor) Thaw() { m.gate.Unlock() }

// Snapshot captures the actual scheduling state ⟨EQ, CQ[], R#⟩ plus the
// Running set. Call with the monitor frozen for a checkpoint-consistent
// view (calling it unfrozen is safe but racy by nature).
func (m *Monitor) Snapshot() state.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := state.Snapshot{
		Monitor:   m.spec.Name,
		At:        m.clk.Now(),
		CQ:        make(map[string][]state.QueueEntry, len(m.conds)),
		Resources: m.resources,
	}
	for _, w := range m.entryQ.Snapshot() {
		snap.EQ = append(snap.EQ, state.QueueEntry{Pid: w.Pid, Proc: w.Proc, Since: w.Since})
	}
	for c, cq := range m.conds {
		entries := make([]state.QueueEntry, 0, cq.Len())
		for _, w := range cq.Snapshot() {
			entries = append(entries, state.QueueEntry{Pid: w.Pid, Proc: w.Proc, Since: w.Since})
		}
		snap.CQ[c] = entries
	}
	for pid, info := range m.inside {
		snap.Running = append(snap.Running, state.RunningEntry{Pid: pid, Since: info.since})
	}
	return snap
}

// Test- and tool-facing accessors.

// InsideCount reports how many processes are inside the monitor.
func (m *Monitor) InsideCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inside)
}

// EntryLen reports the entry-queue length.
func (m *Monitor) EntryLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entryQ.Len()
}

// CondLen reports the length of condition queue cond (0 for unknown).
func (m *Monitor) CondLen(cond string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cq, ok := m.conds[cond]; ok {
		return cq.Len()
	}
	return 0
}

// Resources reports the current R# (free slots for a coordinator).
func (m *Monitor) Resources() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resources
}
