package monitor

// Hooks are the fault-injection surface of the prototype. A correct
// monitor uses the zero value (every field nil/default). The injector
// in internal/faults sets exactly one deviation to realise one fault
// kind from the §2.2 taxonomy; the detection experiment then verifies
// the checking routines catch it.
//
// Hooks are consulted inside the monitor's critical section; they must
// not block or call back into the monitor.
type Hooks struct {
	// Enter overrides the entry protocol decision for the given process.
	// The bool argument reports whether the monitor is occupied.
	Enter func(pid int64, proc string, occupied bool) EnterAction
	// Wait overrides the Wait protocol decision.
	Wait func(pid int64, proc, cond string) WaitAction
	// SignalExit overrides the Signal-Exit protocol decision.
	SignalExit func(pid int64, proc, cond string) SignalAction
	// SkipHandoff, when set, makes the monitor skip the given pid when
	// popping the entry queue for a handoff: the starvation faults
	// (Enter I.a.3 "no response" for a victim, Wait I.b.4 "entry waiting
	// process is starved").
	SkipHandoff func(pid int64) bool
}

// EnterAction directs the entry protocol.
type EnterAction int

// Entry protocol deviations.
const (
	// EnterDefault follows the correct protocol.
	EnterDefault EnterAction = iota
	// EnterForceGrant admits the caller even though the monitor is
	// occupied — fault I.a.1, mutual exclusion not guaranteed.
	EnterForceGrant
	// EnterDrop records the blocked-entry event but then loses the
	// process: it is neither queued nor admitted — fault I.a.2.
	EnterDrop
	// EnterForceBlock queues the caller even though the monitor is free
	// — fault I.a.3, the requesting process receives no response.
	EnterForceBlock
)

// WaitAction directs the Wait protocol.
type WaitAction int

// Wait protocol deviations.
const (
	// WaitDefault follows the correct protocol.
	WaitDefault WaitAction = iota
	// WaitNoBlock records the Wait event and queues the caller on the
	// condition, but lets it keep running inside the monitor — fault
	// I.b.1, synchronisation not guaranteed.
	WaitNoBlock
	// WaitDrop records the event but loses the process: not queued on
	// the condition, never resumed — fault I.b.2.
	WaitDrop
	// WaitNoHandoff blocks the caller without resuming the head of the
	// entry queue — fault I.b.3, entry waiting processes not resumed.
	WaitNoHandoff
	// WaitDoubleHandoff resumes two entry-queue waiters at once — fault
	// I.b.5, mutual exclusion not guaranteed.
	WaitDoubleHandoff
	// WaitKeepLock blocks the caller but fails to release the monitor —
	// fault I.b.6.
	WaitKeepLock
)

// SignalAction directs the Signal-Exit protocol.
type SignalAction int

// Signal-Exit protocol deviations.
const (
	// SignalDefault follows the correct protocol.
	SignalDefault SignalAction = iota
	// SignalNoWake releases the monitor without resuming any waiter —
	// fault I.c.1, waiting processes not resumed.
	SignalNoWake
	// SignalKeepLock exits without releasing the monitor (the caller
	// remains the recorded occupant) — fault I.c.2.
	SignalKeepLock
	// SignalDoubleWake resumes both a condition waiter and an
	// entry-queue waiter — fault I.c.3, mutual exclusion not
	// guaranteed.
	SignalDoubleWake
)

func (h Hooks) enterAction(pid int64, proc string, occupied bool) EnterAction {
	if h.Enter == nil {
		return EnterDefault
	}
	return h.Enter(pid, proc, occupied)
}

func (h Hooks) waitAction(pid int64, proc, cond string) WaitAction {
	if h.Wait == nil {
		return WaitDefault
	}
	return h.Wait(pid, proc, cond)
}

func (h Hooks) signalAction(pid int64, proc, cond string) SignalAction {
	if h.SignalExit == nil {
		return SignalDefault
	}
	return h.SignalExit(pid, proc, cond)
}

func (h Hooks) skip(pid int64) bool {
	return h.SkipHandoff != nil && h.SkipHandoff(pid)
}
