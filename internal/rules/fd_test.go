package rules

import (
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/state"
)

var t0 = time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC)

func coordCfg() Config {
	return Config{
		Spec: monitor.Spec{
			Name: "buf", Kind: monitor.CommunicationCoordinator,
			Conditions:  []string{"notFull", "notEmpty"},
			Rmax:        2,
			SendProc:    "Send",
			ReceiveProc: "Receive",
		},
	}
}

func managerCfg() Config {
	return Config{
		Spec: monitor.Spec{
			Name: "m", Kind: monitor.OperationManager,
			Conditions: []string{"ok"},
		},
	}
}

func allocCfg() Config {
	return Config{
		Spec: monitor.Spec{
			Name: "alloc", Kind: monitor.ResourceAllocator,
			CallOrder: "path Acquire ; Release end",
		},
	}
}

// tr builds a trace, assigning sequence numbers and timestamps spaced
// one millisecond apart.
func tr(events ...event.Event) event.Seq {
	out := make(event.Seq, len(events))
	for i, e := range events {
		e.Seq = int64(i + 1)
		e.Time = t0.Add(time.Duration(i) * time.Millisecond)
		if e.Monitor == "" {
			e.Monitor = "m"
		}
		out[i] = e
	}
	return out
}

func enter(pid int64, proc string, flag int) event.Event {
	return event.Event{Type: event.Enter, Pid: pid, Proc: proc, Flag: flag}
}

func wait(pid int64, proc, cond string) event.Event {
	return event.Event{Type: event.Wait, Pid: pid, Proc: proc, Cond: cond}
}

func sigexit(pid int64, proc, cond string, flag int) event.Event {
	return event.Event{Type: event.SignalExit, Pid: pid, Proc: proc, Cond: cond, Flag: flag}
}

func TestCleanTraceNoViolations(t *testing.T) {
	t.Parallel()
	// P1 enters, waits; P2 enters, signals; P1 exits.
	trace := tr(
		enter(1, "Op", 1),
		wait(1, "Op", "ok"),
		enter(2, "Op", 1),
		sigexit(2, "Op", "ok", 1),
		sigexit(1, "Op", "", 0),
	)
	if vs := Check(trace, managerCfg()); len(vs) != 0 {
		t.Fatalf("clean trace produced violations: %v", vs)
	}
}

func TestCleanContendedTrace(t *testing.T) {
	t.Parallel()
	// P1 enters; P2 blocks; P1 exits handing off to P2; P2 exits.
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
		sigexit(1, "Op", "", 0),
		sigexit(2, "Op", "", 0),
	)
	if vs := Check(trace, managerCfg()); len(vs) != 0 {
		t.Fatalf("clean contended trace produced violations: %v", vs)
	}
}

func TestFD1aMutexViolation(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 1), // granted while P1 inside
	)
	vs := Check(trace, managerCfg())
	if !HasRule(vs, FD1a) {
		t.Fatalf("violations = %v, want FD-1a", vs)
	}
	if !HasFault(vs, faults.EnterMutexViolation) {
		t.Fatalf("violations = %v, want EnterMutexViolation classification", vs)
	}
}

func TestFD1cSignalWithoutWaiter(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		sigexit(1, "Op", "ok", 1), // claims to resume from an empty queue
	)
	vs := Check(trace, managerCfg())
	if !HasRule(vs, FD1c) {
		t.Fatalf("violations = %v, want FD-1c", vs)
	}
}

func TestFD1dOperationWithoutEnter(t *testing.T) {
	t.Parallel()
	for _, trace := range []event.Seq{
		tr(wait(1, "Op", "ok")),
		tr(sigexit(1, "Op", "", 0)),
	} {
		vs := Check(trace, managerCfg())
		if !HasRule(vs, FD1d) {
			t.Fatalf("violations = %v, want FD-1d", vs)
		}
		if !HasFault(vs, faults.EnterNotObserved) {
			t.Fatalf("violations = %v, want EnterNotObserved", vs)
		}
	}
}

func TestFD2NonterminationInsideMonitor(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	cfg.Tmax = time.Second
	cfg.End = t0.Add(time.Minute)
	trace := tr(enter(1, "Op", 1)) // never exits
	vs := Check(trace, cfg)
	if !HasRule(vs, FD2) || !HasFault(vs, faults.InternalTermination) {
		t.Fatalf("violations = %v, want FD-2/InternalTermination", vs)
	}
}

func TestFD2NotFiredWithinBudget(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	cfg.Tmax = time.Hour
	cfg.End = t0.Add(time.Minute)
	trace := tr(enter(1, "Op", 1))
	if vs := Check(trace, cfg); len(vs) != 0 {
		t.Fatalf("violations = %v, want none within Tmax", vs)
	}
}

func TestFD3DelayedOnFreeMonitor(t *testing.T) {
	t.Parallel()
	trace := tr(enter(1, "Op", 0)) // blocked although free
	vs := Check(trace, managerCfg())
	if !HasRule(vs, FD3) || !HasFault(vs, faults.EnterNoResponse) {
		t.Fatalf("violations = %v, want FD-3/EnterNoResponse", vs)
	}
}

func TestFD4EntryQueueStarvation(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	cfg.Tio = time.Second
	cfg.End = t0.Add(time.Minute)
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0), // stuck on EQ past Tio
	)
	vs := Check(trace, cfg)
	if !HasRule(vs, FD4) {
		t.Fatalf("violations = %v, want FD-4", vs)
	}
}

func TestFD4CondQueueAbandoned(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	cfg.Tmax = time.Second
	cfg.End = t0.Add(time.Minute)
	trace := tr(
		enter(1, "Op", 1),
		wait(1, "Op", "ok"), // nobody ever signals
	)
	vs := Check(trace, cfg)
	if !HasRule(vs, FD4) || !HasFault(vs, faults.SignalNoResume) {
		t.Fatalf("violations = %v, want FD-4/SignalNoResume", vs)
	}
}

func TestFD5aResumeWithoutSignal(t *testing.T) {
	t.Parallel()
	// P1 waits on ok, then acts again without any signal: the WaitNoBlock
	// fault's signature.
	trace := tr(
		enter(1, "Op", 1),
		wait(1, "Op", "ok"),
		sigexit(1, "Op", "", 0),
	)
	vs := Check(trace, managerCfg())
	if !HasRule(vs, FD5a) || !HasFault(vs, faults.WaitNoBlock) {
		t.Fatalf("violations = %v, want FD-5a/WaitNoBlock", vs)
	}
}

func TestFD5bResumeWithoutHandoff(t *testing.T) {
	t.Parallel()
	// P2 blocks on entry then acts while still queued.
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
		wait(2, "Op", "ok"),
	)
	vs := Check(trace, managerCfg())
	if !HasRule(vs, FD5b) {
		t.Fatalf("violations = %v, want FD-5b", vs)
	}
}

func TestFD6aSendOverflow(t *testing.T) {
	t.Parallel()
	// Three sends complete with Rmax=2 and no receive: s > r+Rmax.
	trace := tr(
		enter(1, "Send", 1), sigexit(1, "Send", "notEmpty", 0),
		enter(2, "Send", 1), sigexit(2, "Send", "notEmpty", 0),
		enter(3, "Send", 1), sigexit(3, "Send", "notEmpty", 0),
	)
	for i := range trace {
		trace[i].Monitor = "buf"
	}
	vs := Check(trace, coordCfg())
	if !HasRule(vs, FD6a) || !HasFault(vs, faults.SendOverflow) {
		t.Fatalf("violations = %v, want FD-6a/SendOverflow", vs)
	}
}

func TestFD6aReceiveOvertake(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Receive", 1), sigexit(1, "Receive", "notFull", 0),
	)
	vs := Check(trace, coordCfg())
	if !HasRule(vs, FD6a) || !HasFault(vs, faults.ReceiveOvertake) {
		t.Fatalf("violations = %v, want FD-6a/ReceiveOvertake", vs)
	}
}

func TestFD6bSendSpuriousDelay(t *testing.T) {
	t.Parallel()
	// Send waits although the buffer is empty (R#=Rmax).
	trace := tr(
		enter(1, "Send", 1),
		wait(1, "Send", "notFull"),
	)
	vs := Check(trace, coordCfg())
	if !HasRule(vs, FD6b) || !HasFault(vs, faults.SendSpuriousDelay) {
		t.Fatalf("violations = %v, want FD-6b/SendSpuriousDelay", vs)
	}
}

func TestFD6bLegitSendDelay(t *testing.T) {
	t.Parallel()
	// Fill the buffer (two sends), then a third send legitimately waits.
	trace := tr(
		enter(1, "Send", 1), sigexit(1, "Send", "notEmpty", 0),
		enter(2, "Send", 1), sigexit(2, "Send", "notEmpty", 0),
		enter(3, "Send", 1), wait(3, "Send", "notFull"),
	)
	vs := Check(trace, coordCfg())
	if HasRule(vs, FD6b) {
		t.Fatalf("legitimate full-buffer delay flagged: %v", vs)
	}
}

func TestFD6cReceiveSpuriousDelay(t *testing.T) {
	t.Parallel()
	// One item in the buffer, yet Receive waits.
	trace := tr(
		enter(1, "Send", 1), sigexit(1, "Send", "notEmpty", 0),
		enter(2, "Receive", 1), wait(2, "Receive", "notEmpty"),
	)
	vs := Check(trace, coordCfg())
	if !HasRule(vs, FD6c) || !HasFault(vs, faults.ReceiveSpuriousDelay) {
		t.Fatalf("violations = %v, want FD-6c/ReceiveSpuriousDelay", vs)
	}
}

func TestFD7aSelfDeadlock(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Acquire", 1), sigexit(1, "Acquire", "", 0),
		enter(1, "Acquire", 1), // re-acquire while holding
	)
	for i := range trace {
		trace[i].Monitor = "alloc"
	}
	vs := Check(trace, allocCfg())
	if !HasRule(vs, FD7a) || !HasFault(vs, faults.SelfDeadlock) {
		t.Fatalf("violations = %v, want FD-7a/SelfDeadlock", vs)
	}
}

func TestFD7bReleaseWithoutAcquire(t *testing.T) {
	t.Parallel()
	trace := tr(enter(1, "Release", 1))
	vs := Check(trace, allocCfg())
	if !HasRule(vs, FD7b) || !HasFault(vs, faults.ReleaseWithoutAcquire) {
		t.Fatalf("violations = %v, want FD-7b/ReleaseWithoutAcquire", vs)
	}
}

func TestFD7cResourceNeverReleased(t *testing.T) {
	t.Parallel()
	cfg := allocCfg()
	cfg.Tlimit = time.Second
	cfg.End = t0.Add(time.Minute)
	trace := tr(
		enter(1, "Acquire", 1), sigexit(1, "Acquire", "", 0),
	)
	vs := Check(trace, cfg)
	if !HasRule(vs, FD7c) || !HasFault(vs, faults.ResourceNeverReleased) {
		t.Fatalf("violations = %v, want FD-7c/ResourceNeverReleased", vs)
	}
}

func TestFD7CleanAcquireReleaseCycles(t *testing.T) {
	t.Parallel()
	cfg := allocCfg()
	cfg.Tlimit = time.Second
	cfg.End = t0.Add(time.Minute)
	trace := tr(
		enter(1, "Acquire", 1), sigexit(1, "Acquire", "", 0),
		enter(2, "Acquire", 1), sigexit(2, "Acquire", "", 0),
		enter(1, "Release", 1), sigexit(1, "Release", "", 0),
		enter(2, "Release", 1), sigexit(2, "Release", "", 0),
	)
	if vs := Check(trace, cfg); len(vs) != 0 {
		t.Fatalf("clean allocator trace produced violations: %v", vs)
	}
}

func TestFinalSnapshotMismatchEQ(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	// Trace says P2 is on the entry queue; the actual monitor lost it.
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
	)
	final := &state.Snapshot{
		Monitor: "m",
		At:      t0.Add(time.Second),
		CQ:      map[string][]state.QueueEntry{"ok": nil},
		Running: []state.RunningEntry{{Pid: 1}},
		// EQ empty: P2 vanished.
	}
	cfg.Final = final
	vs := Check(trace, cfg)
	if !HasRule(vs, FD4) {
		t.Fatalf("violations = %v, want FD-4 for the lost process", vs)
	}
}

func TestFinalSnapshotMismatchRunning(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	// Trace says the monitor is free; actually P1 still occupies it.
	trace := tr(
		enter(1, "Op", 1),
		sigexit(1, "Op", "", 0),
	)
	cfg.Final = &state.Snapshot{
		Monitor: "m",
		At:      t0.Add(time.Second),
		CQ:      map[string][]state.QueueEntry{"ok": nil},
		Running: []state.RunningEntry{{Pid: 1}},
	}
	vs := Check(trace, cfg)
	if !HasRule(vs, FD1a) || !HasFault(vs, faults.SignalMonitorNotReleased) {
		t.Fatalf("violations = %v, want FD-1a/SignalMonitorNotReleased", vs)
	}
}

func TestFinalSnapshotAgreementIsSilent(t *testing.T) {
	t.Parallel()
	cfg := managerCfg()
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
	)
	cfg.Final = &state.Snapshot{
		Monitor: "m",
		At:      t0.Add(time.Second),
		EQ:      []state.QueueEntry{{Pid: 2, Proc: "Op"}},
		CQ:      map[string][]state.QueueEntry{"ok": nil},
		Running: []state.RunningEntry{{Pid: 1}},
	}
	if vs := Check(trace, cfg); len(vs) != 0 {
		t.Fatalf("agreeing snapshot produced violations: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	t.Parallel()
	v := Violation{Rule: FD1a, Monitor: "m", Pid: 3, Message: "boom"}
	if got := v.String(); got != "FD-1a[m] P3: boom" {
		t.Fatalf("String = %q", got)
	}
	v.Pid = 0
	if got := v.String(); got != "FD-1a[m]: boom" {
		t.Fatalf("String = %q", got)
	}
}

func TestGroupingHelpers(t *testing.T) {
	t.Parallel()
	vs := []Violation{
		{Rule: FD1a, Fault: faults.EnterMutexViolation},
		{Rule: FD1a},
		{Rule: FD4},
	}
	g := ByRule(vs)
	if len(g[FD1a]) != 2 || len(g[FD4]) != 1 {
		t.Fatalf("ByRule = %v", g)
	}
	if !HasRule(vs, FD4) || HasRule(vs, FD7a) {
		t.Fatal("HasRule wrong")
	}
	if !HasFault(vs, faults.EnterMutexViolation) || HasFault(vs, faults.SelfDeadlock) {
		t.Fatal("HasFault wrong")
	}
}
