package rules

import (
	"fmt"

	"robustmon/internal/event"
)

// The recording pipeline stores the simplified event set of §3.3.1,
// where the resumption of a blocked process emits no new event. The
// paper's FD-Rules, however, are stated over the original model of
// §3.1, in which a blocked Enter or Wait record has its flag changed
// from 0 to 1 when the process is resumed. Effective reconstructs that
// original sequence:
//
//   - a blocked Enter that is later resumed appears at its RESUMPTION
//     point with flag 1 (its scheduling-state change — entering the
//     monitor — happens there; this is what makes FD-Rule 1a's
//     quantifier sound);
//   - a Wait appears at its ISSUE point (its state change — leaving the
//     monitor — happens there) with its flag mutated to 1 once a
//     Signal-Exit resumes it, exactly the in-place update §3.1
//     describes;
//   - records never resumed keep flag 0 — the starvation witnesses
//     FD-Rule 4 quantifies over.
//
// The Literal* checks then implement FD-Rules exactly as the paper
// quantifies them, giving a third, independently derived implementation
// to cross-validate the interpreter-based Check and the checking-list
// algorithms.

// Effective reconstructs the §3.1 event sequence from a recorded
// (simplified) trace of one monitor. Repositioned Enter records carry
// the Seq and time of the event that resumed them.
func Effective(trace event.Seq) event.Seq {
	var eq []event.Event     // blocked Enter records awaiting resumption
	cq := map[string][]int{} // cond → indices into out of pending Wait records
	out := make(event.Seq, 0, len(trace))

	// resumeEQ re-emits the entry-queue head at the current position
	// with flag 1.
	resumeEQ := func(cause event.Event) {
		if len(eq) == 0 {
			return
		}
		head := eq[0]
		eq = eq[1:]
		head.Flag = event.Completed
		head.Time = cause.Time
		head.Seq = cause.Seq
		out = append(out, head)
	}

	for _, e := range trace {
		switch e.Type {
		case event.Enter:
			if e.Flag == event.Blocked {
				eq = append(eq, e)
				continue
			}
			out = append(out, e)
		case event.Wait:
			out = append(out, e)
			cq[e.Cond] = append(cq[e.Cond], len(out)-1)
			resumeEQ(e)
		case event.SignalExit:
			out = append(out, e)
			if e.Flag == event.Completed {
				if idxs := cq[e.Cond]; len(idxs) > 0 {
					cq[e.Cond] = idxs[1:]
					out[idxs[0]].Flag = event.Completed
					out[idxs[0]].Time = e.Time
				}
			} else {
				resumeEQ(e)
			}
		}
	}
	// Never-resumed blocked entries close the sequence in issue order,
	// still flagged 0. (Never-resumed Waits are already in place.)
	out = append(out, eq...)
	return out
}

// LiteralFD1a implements FD-Rule 1a exactly as §3.2 states it over the
// effective sequence: for every l_r = Enter(P, Pr, t_r, 1), every
// earlier l_j = Enter(P', Pr', t_j, 1) must be followed by some l_k,
// j < k < r, that is a Wait or Signal-Exit by P'.
func LiteralFD1a(eff event.Seq, monitorName string) []Violation {
	var out []Violation
	for r, er := range eff {
		if er.Type != event.Enter || er.Flag != event.Completed {
			continue
		}
		for j := 0; j < r; j++ {
			ej := eff[j]
			if ej.Type != event.Enter || ej.Flag != event.Completed {
				continue
			}
			left := false
			for k := j + 1; k < r; k++ {
				ek := eff[k]
				if ek.Pid == ej.Pid && (ek.Type == event.Wait || ek.Type == event.SignalExit) {
					left = true
					break
				}
			}
			if !left {
				out = append(out, Violation{
					Rule: FD1a, Monitor: monitorName, Pid: er.Pid, Proc: er.Proc,
					Seq: er.Seq, At: er.Time,
					Message: fmt.Sprintf("literal FD-1a: P%d enters while P%d never left (events %d and %d)",
						er.Pid, ej.Pid, ej.Seq, er.Seq),
				})
			}
		}
	}
	return out
}

// LiteralFD1d implements FD-Rule 1d as stated: every Wait or
// Signal-Exit by P must be preceded by some Enter(P, Pr, t, 1).
func LiteralFD1d(eff event.Seq, monitorName string) []Violation {
	var out []Violation
	entered := make(map[int64]bool)
	for _, e := range eff {
		switch e.Type {
		case event.Enter:
			if e.Flag == event.Completed {
				entered[e.Pid] = true
			}
		case event.Wait, event.SignalExit:
			if !entered[e.Pid] {
				out = append(out, Violation{
					Rule: FD1d, Monitor: monitorName, Pid: e.Pid, Proc: e.Proc,
					Seq: e.Seq, At: e.Time,
					Message: fmt.Sprintf("literal FD-1d: %s by P%d with no prior completed Enter", e.Type, e.Pid),
				})
			}
		}
	}
	return out
}

// LiteralFD5a implements FD-Rule 5a as stated: every Wait(P, Pr, Cond,
// t, 1) — a condition waiter that was resumed — requires some
// Signal-Exit(P', Pr', Cond, t', 1) elsewhere in the sequence.
func LiteralFD5a(eff event.Seq, monitorName string) []Violation {
	signals := make(map[string]int)
	for _, e := range eff {
		if e.Type == event.SignalExit && e.Flag == event.Completed {
			signals[e.Cond]++
		}
	}
	var out []Violation
	resumed := make(map[string]int)
	for _, e := range eff {
		if e.Type != event.Wait || e.Flag != event.Completed {
			continue
		}
		resumed[e.Cond]++
		if resumed[e.Cond] > signals[e.Cond] {
			out = append(out, Violation{
				Rule: FD5a, Monitor: monitorName, Pid: e.Pid, Proc: e.Proc, Cond: e.Cond,
				Seq: e.Seq, At: e.Time,
				Message: fmt.Sprintf("literal FD-5a: P%d resumed from %q without a matching Signal-Exit",
					e.Pid, e.Cond),
			})
		}
	}
	return out
}

// CheckLiteral runs the literal-form rules over a recorded trace
// (reconstructing the effective sequence first) and returns their
// combined findings.
func CheckLiteral(trace event.Seq, monitorName string) []Violation {
	eff := Effective(trace)
	var out []Violation
	out = append(out, LiteralFD1a(eff, monitorName)...)
	out = append(out, LiteralFD1d(eff, monitorName)...)
	out = append(out, LiteralFD5a(eff, monitorName)...)
	return out
}
