// Package rules defines the paper's validity rules for scheduling
// sequences and implements the FD-Rules (§3.2) as a direct checker over
// a complete recorded trace.
//
// The FD-Rules characterise a valid scheduling sequence L, S:
//
//	FD-1  mutually exclusive access to the monitor
//	FD-2  nontermination inside a monitor (Tmax)
//	FD-3  fair response (a request is delayed only when the monitor is
//	      in use)
//	FD-4  free of starvation and losing processes (Tio; blocked events
//	      actually grow their queue)
//	FD-5  correct synchronisation (waiters resumed only by the matching
//	      Signal-Exit / handoff)
//	FD-6  consistency of resource states (0 ≤ r ≤ s ≤ r+Rmax; Send
//	      waits only when R#=0, Receive only when R#=Rmax)
//	FD-7  correct ordering of procedure calls (the declared path)
//
// The checker here replays the whole trace (the T=1 "real-time" limit
// of §3.3); the incremental segment-based algorithms live in
// internal/detect. The two implementations are developed independently
// and cross-validated in tests, mirroring the paper's claim that the
// FD-Rules and ST-Rules are equivalent.
package rules

import (
	"fmt"
	"time"

	"robustmon/internal/faults"
)

// ID names a violated rule. FD-* ids are produced by this package's
// full-trace checker; ST-* ids by the incremental algorithms in
// internal/detect.
type ID string

// FD-Rule identifiers (§3.2).
const (
	FD1a ID = "FD-1a" // enter granted while monitor in use
	FD1b ID = "FD-1b" // wait/exit did not pass the monitor to the entry queue head
	FD1c ID = "FD-1c" // signal did not resume exactly the condition queue head
	FD1d ID = "FD-1d" // operation inside the monitor without a prior Enter
	FD2  ID = "FD-2"  // process never left the monitor within Tmax
	FD3  ID = "FD-3"  // request delayed although the monitor was free
	FD4  ID = "FD-4"  // starvation / lost process on a queue
	FD5a ID = "FD-5a" // condition waiter resumed without a signal
	FD5b ID = "FD-5b" // entry waiter resumed without a handoff
	FD6a ID = "FD-6a" // resource invariant 0 ≤ r ≤ s ≤ r+Rmax violated
	FD6b ID = "FD-6b" // Send waited although R# ≠ 0
	FD6c ID = "FD-6c" // Receive waited although R# ≠ Rmax
	FD7a ID = "FD-7a" // call order violated (e.g. acquire while holding)
	FD7b ID = "FD-7b" // release without acquire
	FD7c ID = "FD-7c" // obligation never completed (resource held past Tlimit)
)

// ST-Rule identifiers (§3.3.2), reported by internal/detect.
const (
	ST1  ID = "ST-1"  // Enter-0-List ≠ actual EQ at checkpoint
	ST2  ID = "ST-2"  // Wait-Cond-List ≠ actual CQ[cond] at checkpoint
	ST3a ID = "ST-3a" // |Running-List| > 1
	ST3b ID = "ST-3b" // Wait/Signal-Exit by a process not in Running-List
	ST3c ID = "ST-3c" // Enter(flag 1) while another process runs
	ST3d ID = "ST-3d" // Enter(flag 0) while the monitor is free
	ST4  ID = "ST-4"  // event by a process already on a waiting list
	ST5  ID = "ST-5"  // Timer(Pid) ≥ Tmax on Running/Wait-Cond lists
	ST6  ID = "ST-6"  // Timer(Pid) ≥ Tio on Enter-0-List
	ST7a ID = "ST-7a" // 0 ≤ r ≤ s ≤ r+Rmax violated
	ST7b ID = "ST-7b" // R#(t) ≠ R#(p) + r − s across the segment
	ST7c ID = "ST-7c" // Send waited with Resource-No ≠ 0
	ST7d ID = "ST-7d" // Receive waited with Resource-No ≠ Rmax
	ST8a ID = "ST-8a" // duplicate Pid in Request-List (self deadlock)
	ST8b ID = "ST-8b" // Release by a Pid not in Request-List
	ST8c ID = "ST-8c" // Pid in Request-List past Tlimit
	STrn ID = "ST-R"  // Running-List ≠ actual occupancy at checkpoint
	STrs ID = "ST-RS" // reconstructed R# ≠ actual R# at checkpoint
)

// Assert is the rule ID for user-supplied monitor assertions (the §5
// future-work extension implemented in internal/assert).
const Assert ID = "ASSERT"

// Meta is the rule ID for synthetic meta-violations: the detection
// pipeline watching itself. A threshold rule over the obs registry
// (internal/obs/rules, detect.Config.Rules) that crosses into the
// firing state is reported through the ordinary violation path with
// this ID and Phase "meta", so pipeline degradation — checkpoint p99
// over budget, exporter drops climbing — surfaces exactly where
// application faults do.
const Meta ID = "META"

// Violation is one detected rule violation.
type Violation struct {
	// Rule is the violated rule.
	Rule ID
	// Monitor names the monitor the violation occurred on.
	Monitor string
	// Pid is the offending (or victimised) process, 0 when not
	// attributable to one process.
	Pid int64
	// Proc is the monitor procedure involved, if any.
	Proc string
	// Cond is the condition variable involved, if any.
	Cond string
	// Seq is the sequence number of the event that exposed the
	// violation (0 for checkpoint-time checks).
	Seq int64
	// At is the instant the violation was established.
	At time.Time
	// Fault is the taxonomy classification the detector assigns, when
	// one is implied by the rule (0 = unclassified).
	Fault faults.Kind
	// Phase records which detection phase found the violation:
	// "realtime" for the per-event calling-order checks on allocator
	// monitors, "periodic" for the checkpoint algorithms, "offline" for
	// trace re-checking (§3.3: "two phases"), "meta" for synthetic
	// violations raised by threshold rules over the pipeline's own
	// metrics (see Meta).
	Phase string
	// Message is a human-readable description.
	Message string
}

// String renders "rule[monitor] P<pid>: message".
func (v Violation) String() string {
	pid := ""
	if v.Pid != 0 {
		pid = fmt.Sprintf(" P%d", v.Pid)
	}
	return fmt.Sprintf("%s[%s]%s: %s", v.Rule, v.Monitor, pid, v.Message)
}

// ByRule groups violations by rule ID.
func ByRule(vs []Violation) map[ID][]Violation {
	out := make(map[ID][]Violation)
	for _, v := range vs {
		out[v.Rule] = append(out[v.Rule], v)
	}
	return out
}

// HasRule reports whether any violation has the given rule ID.
func HasRule(vs []Violation, id ID) bool {
	for _, v := range vs {
		if v.Rule == id {
			return true
		}
	}
	return false
}

// HasFault reports whether any violation was classified as the given
// fault kind.
func HasFault(vs []Violation, k faults.Kind) bool {
	for _, v := range vs {
		if v.Fault == k {
			return true
		}
	}
	return false
}
