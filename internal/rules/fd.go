package rules

import (
	"fmt"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/faults"
	"robustmon/internal/monitor"
	"robustmon/internal/pathexpr"
	"robustmon/internal/state"
)

// Config parameterises the FD-rule checker for one monitor's trace.
type Config struct {
	// Spec is the monitor declaration (kind, conditions, Rmax,
	// Send/Receive procedures, call order).
	Spec monitor.Spec
	// Tmax bounds time inside the monitor or on a condition queue
	// (FD-2). Zero disables the check.
	Tmax time.Duration
	// Tio bounds entry-queue waiting (FD-4). Zero disables the check.
	Tio time.Duration
	// Tlimit bounds how long a call-order obligation (an unreleased
	// resource) may stay open (FD-7c). Zero disables the check.
	Tlimit time.Duration
	// End is the instant the trace was cut; timers are evaluated
	// against it. The zero value disables all timer checks.
	End time.Time
	// Final, when non-nil, is the actual monitor state at End; the
	// checker compares it against the state reconstructed from the
	// trace, which is how lost processes are caught (FD-4).
	Final *state.Snapshot
}

// Check replays the trace for one monitor against FD-Rules 1–7 and
// returns every violation found. The trace must contain only events of
// the configured monitor, in order.
func Check(trace event.Seq, cfg Config) []Violation {
	c := &fdChecker{
		cfg:      cfg,
		inside:   make(map[int64]time.Time),
		cq:       make(map[string][]listEntry, len(cfg.Spec.Conditions)),
		res:      cfg.Spec.Rmax,
		matchers: make(map[int64]*pathState),
	}
	for _, cond := range cfg.Spec.Conditions {
		c.cq[cond] = nil
	}
	// Spec.Validate compiled the expression when the monitor was built;
	// recompile here so offline checking works from a bare Spec. A
	// broken declaration disables order checking (it could never have
	// produced a running monitor).
	if p, err := cfg.Spec.Validate(); err == nil {
		c.path = p
	}
	for _, e := range trace {
		c.step(e)
	}
	c.finish()
	return c.out
}

type listEntry struct {
	pid   int64
	proc  string
	since time.Time
}

// pathState is one process's position in the declared call order plus
// the instant its current (unfinished) traversal opened — the analogue
// of its Request-List residency.
type pathState struct {
	m         *pathexpr.Matcher
	openSince time.Time
}

type fdChecker struct {
	cfg  Config
	out  []Violation
	path *pathexpr.Path

	inside   map[int64]time.Time
	eq       []listEntry
	cq       map[string][]listEntry
	r, s     int
	res      int
	matchers map[int64]*pathState
}

func (c *fdChecker) violate(rule ID, e event.Event, fault faults.Kind, format string, args ...any) {
	c.out = append(c.out, Violation{
		Rule:    rule,
		Monitor: c.cfg.Spec.Name,
		Pid:     e.Pid,
		Proc:    e.Proc,
		Cond:    e.Cond,
		Seq:     e.Seq,
		At:      e.Time,
		Fault:   fault,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *fdChecker) step(e event.Event) {
	switch e.Type {
	case event.Enter:
		c.stepEnter(e)
	case event.Wait:
		c.stepWait(e)
	case event.SignalExit:
		c.stepSignalExit(e)
	}
}

// checkNotListed enforces the premise shared by FD-1 and FD-5: a
// process that emits a new event must not currently be parked on a
// queue (it could only act if it was resumed outside the protocol).
func (c *fdChecker) checkNotListed(e event.Event) {
	for _, w := range c.eq {
		if w.pid == e.Pid {
			c.violate(FD5b, e, faults.EnterLostProcess,
				"P%d acts while still on the entry queue (resumed without handoff)", e.Pid)
		}
	}
	for cond, q := range c.cq {
		for _, w := range q {
			if w.pid == e.Pid {
				c.violate(FD5a, e, faults.WaitNoBlock,
					"P%d acts while still waiting on condition %q (resumed without signal)", e.Pid, cond)
			}
		}
	}
}

func (c *fdChecker) stepEnter(e event.Event) {
	c.checkNotListed(e)
	c.stepPath(e)
	if _, ok := c.inside[e.Pid]; ok {
		c.violate(FD1a, e, faults.EnterMutexViolation,
			"P%d re-enters while already inside", e.Pid)
	}
	if e.Flag == event.Completed {
		if len(c.inside) > 0 {
			c.violate(FD1a, e, faults.EnterMutexViolation,
				"entry granted while %d process(es) inside", len(c.inside))
		}
		c.inside[e.Pid] = e.Time
		return
	}
	// Blocked entry: FD-3 requires the monitor to actually be in use.
	if len(c.inside) == 0 && len(c.eq) == 0 {
		c.violate(FD3, e, faults.EnterNoResponse,
			"entry delayed although the monitor is free")
	}
	c.eq = append(c.eq, listEntry{pid: e.Pid, proc: e.Proc, since: e.Time})
}

func (c *fdChecker) stepWait(e event.Event) {
	c.checkNotListed(e)
	if _, ok := c.inside[e.Pid]; !ok {
		c.violate(FD1d, e, faults.EnterNotObserved,
			"Wait by a process that never entered the monitor")
	}
	delete(c.inside, e.Pid)
	if c.cfg.Spec.Kind == monitor.CommunicationCoordinator {
		switch e.Proc {
		case c.cfg.Spec.SendProc:
			if c.res != 0 {
				c.violate(FD6b, e, faults.SendSpuriousDelay,
					"Send delayed although R#=%d (buffer not full)", c.res)
			}
		case c.cfg.Spec.ReceiveProc:
			if c.res != c.cfg.Spec.Rmax {
				c.violate(FD6c, e, faults.ReceiveSpuriousDelay,
					"Receive delayed although R#=%d (buffer not empty)", c.res)
			}
		}
	}
	c.cq[e.Cond] = append(c.cq[e.Cond], listEntry{pid: e.Pid, proc: e.Proc, since: e.Time})
	c.resumeEntryHead(e)
}

func (c *fdChecker) stepSignalExit(e event.Event) {
	c.checkNotListed(e)
	if _, ok := c.inside[e.Pid]; !ok {
		c.violate(FD1d, e, faults.EnterNotObserved,
			"Signal-Exit by a process that never entered the monitor")
	}
	delete(c.inside, e.Pid)
	if e.Flag == event.Completed {
		q := c.cq[e.Cond]
		if len(q) == 0 {
			c.violate(FD1c, e, 0,
				"signal claims to resume a waiter but condition %q has none", e.Cond)
		} else {
			head := q[0]
			c.cq[e.Cond] = q[1:]
			c.inside[head.pid] = e.Time
		}
	} else {
		c.resumeEntryHead(e)
	}
	if c.cfg.Spec.Kind == monitor.CommunicationCoordinator {
		switch e.Proc {
		case c.cfg.Spec.SendProc:
			c.s++
			c.res--
		case c.cfg.Spec.ReceiveProc:
			c.r++
			c.res++
		}
		if !(0 <= c.r && c.r <= c.s && c.s <= c.r+c.cfg.Spec.Rmax) {
			fault := faults.SendOverflow
			if c.r > c.s {
				fault = faults.ReceiveOvertake
			}
			c.violate(FD6a, e, fault,
				"resource invariant violated: r=%d s=%d Rmax=%d", c.r, c.s, c.cfg.Spec.Rmax)
		}
	}
}

// resumeEntryHead models FD-1b: a Wait or non-signalling Signal-Exit
// passes the monitor to the head of the entry queue when one waits.
func (c *fdChecker) resumeEntryHead(e event.Event) {
	if len(c.eq) == 0 {
		return
	}
	head := c.eq[0]
	c.eq = c.eq[1:]
	c.inside[head.pid] = e.Time
}

// stepPath applies FD-7: each process's calls to order-constrained
// procedures must follow the declared path expression. Steps happen at
// Enter events (each procedure call has exactly one Enter).
func (c *fdChecker) stepPath(e event.Event) {
	if c.path == nil || !c.path.Mentions(e.Proc) {
		return
	}
	ps := c.matchers[e.Pid]
	if ps == nil {
		ps = &pathState{m: c.path.NewMatcher()}
		c.matchers[e.Pid] = ps
	}
	if err := ps.m.Step(e.Proc); err != nil {
		rule, fault := FD7a, faults.SelfDeadlock
		if ps.openSince.IsZero() {
			// Violation from a boundary state: an operation (e.g.
			// Release) arrived before its prerequisite (Acquire).
			rule, fault = FD7b, faults.ReleaseWithoutAcquire
		}
		c.violate(rule, e, fault, "%v", err)
		return
	}
	if ps.m.AtCycleBoundary() {
		ps.openSince = time.Time{}
	} else if ps.openSince.IsZero() {
		ps.openSince = e.Time
	}
}

// finish applies the end-of-trace checks: timers (FD-2, FD-4, FD-7c)
// and, when a final snapshot is supplied, the reconstructed-vs-actual
// state comparison that exposes lost processes (FD-4) and stale
// occupancy (FD-1).
func (c *fdChecker) finish() {
	if end := c.cfg.End; !end.IsZero() {
		c.checkTimers(end)
	}
	if c.cfg.Final != nil {
		c.compareFinal(*c.cfg.Final)
	}
}

func (c *fdChecker) checkTimers(end time.Time) {
	if c.cfg.Tmax > 0 {
		for pid, since := range c.inside {
			if end.Sub(since) >= c.cfg.Tmax {
				c.out = append(c.out, Violation{
					Rule: FD2, Monitor: c.cfg.Spec.Name, Pid: pid, At: end,
					Fault:   faults.InternalTermination,
					Message: fmt.Sprintf("P%d inside the monitor for %v ≥ Tmax", pid, end.Sub(since)),
				})
			}
		}
		for cond, q := range c.cq {
			for _, w := range q {
				if end.Sub(w.since) >= c.cfg.Tmax {
					c.out = append(c.out, Violation{
						Rule: FD4, Monitor: c.cfg.Spec.Name, Pid: w.pid, Cond: cond, At: end,
						Fault:   faults.SignalNoResume,
						Message: fmt.Sprintf("P%d waiting on %q for %v ≥ Tmax", w.pid, cond, end.Sub(w.since)),
					})
				}
			}
		}
	}
	if c.cfg.Tio > 0 {
		for _, w := range c.eq {
			if end.Sub(w.since) >= c.cfg.Tio {
				c.out = append(c.out, Violation{
					Rule: FD4, Monitor: c.cfg.Spec.Name, Pid: w.pid, At: end,
					Fault:   faults.EnterNoResponse,
					Message: fmt.Sprintf("P%d on the entry queue for %v ≥ Tio", w.pid, end.Sub(w.since)),
				})
			}
		}
	}
	if c.cfg.Tlimit > 0 {
		for pid, ps := range c.matchers {
			if !ps.openSince.IsZero() && end.Sub(ps.openSince) >= c.cfg.Tlimit {
				c.out = append(c.out, Violation{
					Rule: FD7c, Monitor: c.cfg.Spec.Name, Pid: pid, At: end,
					Fault:   faults.ResourceNeverReleased,
					Message: fmt.Sprintf("P%d holds an unreleased obligation for %v ≥ Tlimit", pid, end.Sub(ps.openSince)),
				})
			}
		}
	}
}

func (c *fdChecker) compareFinal(snap state.Snapshot) {
	eq := make([]int64, len(c.eq))
	for i, w := range c.eq {
		eq[i] = w.pid
	}
	cq := make(map[string][]int64, len(c.cq))
	for cond, q := range c.cq {
		pids := make([]int64, len(q))
		for i, w := range q {
			pids[i] = w.pid
		}
		cq[cond] = pids
	}
	running := make([]int64, 0, len(c.inside))
	for pid := range c.inside {
		running = append(running, pid)
	}
	wantRes := c.cfg.Spec.Kind == monitor.CommunicationCoordinator
	for _, d := range snap.CompareLists(eq, cq, running, c.res, wantRes) {
		rule := FD4
		var fault faults.Kind
		switch d.Field {
		case "Running":
			rule, fault = FD1a, faults.SignalMonitorNotReleased
		case "Resources":
			rule = FD6a
		}
		c.out = append(c.out, Violation{
			Rule: rule, Monitor: c.cfg.Spec.Name, At: snap.At, Fault: fault,
			Message: fmt.Sprintf("reconstructed %s = %s but actual = %s", d.Field, d.Got, d.Want),
		})
	}
}
