package rules

import (
	"testing"

	"robustmon/internal/event"
)

func TestEffectiveRepositionsResumedEnter(t *testing.T) {
	t.Parallel()
	// P1 enters; P2 blocks; P1 exits (resumes P2); P2 exits.
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
		sigexit(1, "Op", "", 0),
		sigexit(2, "Op", "", 0),
	)
	eff := Effective(trace)
	if len(eff) != 4 {
		t.Fatalf("effective has %d events, want 4: %v", len(eff), eff)
	}
	// Expected order: Enter(P1,1), SE(P1), Enter(P2,1) [repositioned],
	// SE(P2).
	if eff[1].Type != event.SignalExit || eff[1].Pid != 1 {
		t.Fatalf("eff[1] = %v, want P1 Signal-Exit", eff[1])
	}
	if eff[2].Type != event.Enter || eff[2].Pid != 2 || eff[2].Flag != event.Completed {
		t.Fatalf("eff[2] = %v, want repositioned Enter(P2,1)", eff[2])
	}
	if !eff[2].Time.Equal(eff[1].Time) {
		t.Fatalf("repositioned Enter keeps issue time %v, want resumption time %v",
			eff[2].Time, eff[1].Time)
	}
}

func TestEffectiveMutatesResumedWaitFlag(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		wait(1, "Op", "ok"),
		enter(2, "Op", 1),
		sigexit(2, "Op", "ok", 1),
		sigexit(1, "Op", "", 0),
	)
	eff := Effective(trace)
	var w event.Event
	found := false
	for _, e := range eff {
		if e.Type == event.Wait {
			w, found = e, true
		}
	}
	if !found {
		t.Fatal("no Wait in effective sequence")
	}
	if w.Flag != event.Completed {
		t.Fatalf("resumed Wait flag = %d, want 1 (in-place §3.1 update)", w.Flag)
	}
}

func TestEffectiveKeepsStarvedRecordsFlagZero(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0), // never resumed
		wait(1, "Op", "ok"),
	)
	// The Wait hands off to P2 (EQ head), so P2 IS resumed here; build a
	// trace where it is not: P1 stays inside forever.
	trace = tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
	)
	eff := Effective(trace)
	if len(eff) != 2 {
		t.Fatalf("effective = %v", eff)
	}
	last := eff[1]
	if last.Pid != 2 || last.Flag != event.Blocked {
		t.Fatalf("starved record = %v, want P2 flag 0", last)
	}
}

func TestLiteralRulesCleanTrace(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		wait(1, "Op", "ok"),
		enter(2, "Op", 1),
		enter(3, "Op", 0),
		sigexit(2, "Op", "ok", 1), // resumes P1 from the condition
		sigexit(1, "Op", "", 0),   // hands off to P3
		sigexit(3, "Op", "", 0),
	)
	if vs := CheckLiteral(trace, "m"); len(vs) != 0 {
		t.Fatalf("clean trace flagged by literal rules: %v", vs)
	}
}

func TestLiteralFD1aCatchesMutexViolation(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 1), // granted while P1 inside
	)
	vs := CheckLiteral(trace, "m")
	if !HasRule(vs, FD1a) {
		t.Fatalf("violations = %v, want literal FD-1a", vs)
	}
}

func TestLiteralFD1dCatchesBareEntry(t *testing.T) {
	t.Parallel()
	trace := tr(
		sigexit(7, "Op", "", 0), // exits without ever entering
	)
	vs := CheckLiteral(trace, "m")
	if !HasRule(vs, FD1d) {
		t.Fatalf("violations = %v, want literal FD-1d", vs)
	}
}

func TestLiteralFD5aCatchesUnsignalledResume(t *testing.T) {
	t.Parallel()
	// A corrupted trace claiming a condition waiter was resumed twice
	// with only one matching signal.
	eff := event.Seq{
		{Seq: 1, Type: event.Wait, Pid: 1, Proc: "Op", Cond: "ok", Flag: event.Completed},
		{Seq: 2, Type: event.Wait, Pid: 2, Proc: "Op", Cond: "ok", Flag: event.Completed},
		{Seq: 3, Type: event.SignalExit, Pid: 3, Proc: "Op", Cond: "ok", Flag: event.Completed},
	}
	vs := LiteralFD5a(eff, "m")
	if !HasRule(vs, FD5a) {
		t.Fatalf("violations = %v, want literal FD-5a", vs)
	}
}

// TestLiteralAgreesWithInterpreterOnCleanContention cross-validates the
// third implementation against the interpreter on a contended but
// correct schedule.
func TestLiteralAgreesWithInterpreterOnCleanContention(t *testing.T) {
	t.Parallel()
	trace := tr(
		enter(1, "Op", 1),
		enter(2, "Op", 0),
		enter(3, "Op", 0),
		sigexit(1, "Op", "", 0), // → P2
		sigexit(2, "Op", "", 0), // → P3
		sigexit(3, "Op", "", 0),
	)
	interp := Check(trace, managerCfg())
	literal := CheckLiteral(trace, "m")
	if len(interp) != 0 || len(literal) != 0 {
		t.Fatalf("clean contended trace flagged: interp=%v literal=%v", interp, literal)
	}
}
