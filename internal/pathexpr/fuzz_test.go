package pathexpr

import "testing"

// FuzzParse checks that the parser never panics and that every
// successfully parsed expression round-trips through its canonical
// rendering to an equivalent expression.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"path Acquire ; Release end",
		"a , b ; c",
		"{ x } ; [ y ]",
		"path (a ; b) , { c } end",
		"path ; end",
		"((((((a))))))",
		"path a",
		"end",
		"{ , }",
		"path  Open ; { Read , Write } ; Close  end",
		"\x00\x01",
		"path ユニコード ; 識別子 end",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejections are fine; panics are not
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, src, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, p2.String())
		}
		// The matcher must not panic on arbitrary symbols either.
		m := p.NewMatcher()
		for _, sym := range append(p.Symbols(), "nonesuch") {
			_ = m.Step(sym)
		}
	})
}
