package pathexpr

import (
	"fmt"
	"strings"
)

// dfa is the subset-construction determinisation of a path NFA. State 0
// is the start state. A call symbol with no outgoing edge from the
// current state is an ordering violation.
type dfa struct {
	// next[s][sym] is the successor of state s on sym; absence of the
	// key means no valid continuation.
	next []map[string]int
	// accepting[s] reports whether state s represents a whole number of
	// completed path traversals (zero included): it contains the NFA
	// accept state or the NFA start state. The start state's only
	// incoming edge is the cycle edge from accept, so containing it is
	// equivalent to being at a traversal boundary.
	accepting []bool
	// alphabet is the sorted set of symbols the path mentions.
	alphabet []string
}

// buildDFA determinises n.
func buildDFA(n *nfa) *dfa {
	d := &dfa{alphabet: n.alphabet()}
	startSet := n.closure([]int{n.start})
	index := map[string]int{key(startSet): 0}
	sets := [][]int{startSet}
	d.next = append(d.next, make(map[string]int, len(d.alphabet)))
	d.accepting = append(d.accepting, contains(startSet, n.accept) || contains(startSet, n.start))

	for i := 0; i < len(sets); i++ {
		for _, sym := range d.alphabet {
			moved := n.move(sets[i], sym)
			if len(moved) == 0 {
				continue
			}
			target := n.closure(moved)
			k := key(target)
			j, ok := index[k]
			if !ok {
				j = len(sets)
				index[k] = j
				sets = append(sets, target)
				d.next = append(d.next, make(map[string]int, len(d.alphabet)))
				d.accepting = append(d.accepting, contains(target, n.accept) || contains(target, n.start))
			}
			d.next[i][sym] = j
		}
	}
	return d
}

// step returns the successor state, or -1 when sym is not a valid
// continuation from state s.
func (d *dfa) step(s int, sym string) int {
	if t, ok := d.next[s][sym]; ok {
		return t
	}
	return -1
}

// expected returns the symbols with a valid transition from state s,
// in alphabet order.
func (d *dfa) expected(s int) []string {
	out := make([]string, 0, len(d.next[s]))
	for _, sym := range d.alphabet {
		if _, ok := d.next[s][sym]; ok {
			out = append(out, sym)
		}
	}
	return out
}

func key(set []int) string {
	var b strings.Builder
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

func contains(sorted []int, v int) bool {
	for _, s := range sorted {
		if s == v {
			return true
		}
		if s > v {
			return false
		}
	}
	return false
}
