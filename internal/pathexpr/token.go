// Package pathexpr implements the path-expression notation the paper
// adopts (via Campbell & Kolstad [3]) for the visible part of the
// augmented monitor: "the partial ordering of procedure calls within a
// monitor be specified in the monitor declaration" (§3).
//
// Grammar (EBNF):
//
//	path   = [ "path" ] expr [ "end" ] .
//	expr   = seq { "," seq } .        // selection: one alternative per cycle
//	seq    = term { ";" term } .      // sequence: strict order
//	term   = ident                    // a monitor procedure name
//	       | "(" expr ")"             // grouping
//	       | "{" expr "}"             // repetition: zero or more
//	       | "[" expr "]" .           // option: zero or one
//
// The whole path implicitly repeats: after one full traversal the
// expression restarts, so "path Acquire ; Release end" admits the call
// string Acquire Release Acquire Release … for each process. A Matcher
// (one per process) steps through calls and reports the first call that
// cannot extend any valid traversal — exactly the user-process-level
// ordering faults of §2.2 III.
package pathexpr

import (
	"fmt"
	"unicode"
)

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tokIdent  tokenKind = iota + 1
	tokSemi             // ;
	tokComma            // ,
	tokLParen           // (
	tokRParen           // )
	tokLBrace           // {
	tokRBrace           // }
	tokLBrack           // [
	tokRBrack           // ]
	tokPath             // keyword "path"
	tokEnd              // keyword "end"
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokPath:
		return `"path"`
	case tokEnd:
		return `"end"`
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexed token with its byte offset (for error messages).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int    // byte offset into the source
	Msg string // human-readable description
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pathexpr: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex tokenises src. It returns a SyntaxError on the first illegal rune.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBrack, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBrack, "]", i})
			i++
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentRune(rune(src[i])) {
				i++
			}
			text := src[start:i]
			switch text {
			case "path":
				toks = append(toks, token{tokPath, text, start})
			case "end":
				toks = append(toks, token{tokEnd, text, start})
			default:
				toks = append(toks, token{tokIdent, text, start})
			}
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("illegal character %q", rune(c))}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
