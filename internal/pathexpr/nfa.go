package pathexpr

import "sort"

// nfa is a Thompson automaton for one path expression with an ε-edge
// from accept back to start, realising the implicit cycling of a path
// declaration (after one complete traversal the order constraint
// restarts).
type nfa struct {
	// eps[s] lists the ε-successors of state s.
	eps [][]int
	// sym[s] maps a procedure name to the labelled successors of s.
	sym []map[string][]int
	// start and accept are the distinguished states.
	start, accept int
}

func newNFA() *nfa { return &nfa{} }

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.sym = append(n.sym, nil)
	return len(n.eps) - 1
}

func (n *nfa) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

func (n *nfa) addSym(from int, s string, to int) {
	if n.sym[from] == nil {
		n.sym[from] = make(map[string][]int, 2)
	}
	n.sym[from][s] = append(n.sym[from][s], to)
}

// frag is a partially built automaton fragment with one entry and one
// exit state.
type frag struct{ in, out int }

// buildNFA compiles the AST into an NFA with the cycle edge installed.
func buildNFA(e Expr) *nfa {
	n := newNFA()
	f := n.compile(e)
	n.start = f.in
	n.accept = f.out
	// Implicit repetition of the whole path.
	n.addEps(n.accept, n.start)
	return n
}

func (n *nfa) compile(e Expr) frag {
	switch e := e.(type) {
	case *Name:
		in, out := n.newState(), n.newState()
		n.addSym(in, e.Sym, out)
		return frag{in, out}
	case *Sequence:
		cur := n.compile(e.Parts[0])
		for _, p := range e.Parts[1:] {
			next := n.compile(p)
			n.addEps(cur.out, next.in)
			cur = frag{cur.in, next.out}
		}
		return cur
	case *Selection:
		in, out := n.newState(), n.newState()
		for _, a := range e.Alts {
			f := n.compile(a)
			n.addEps(in, f.in)
			n.addEps(f.out, out)
		}
		return frag{in, out}
	case *Repetition:
		in, out := n.newState(), n.newState()
		f := n.compile(e.Body)
		n.addEps(in, f.in)
		n.addEps(f.out, f.in)
		n.addEps(f.out, out)
		n.addEps(in, out)
		return frag{in, out}
	case *Option:
		in, out := n.newState(), n.newState()
		f := n.compile(e.Body)
		n.addEps(in, f.in)
		n.addEps(f.out, out)
		n.addEps(in, out)
		return frag{in, out}
	default:
		// Unreachable: the parser only builds the five node kinds above.
		in := n.newState()
		return frag{in, in}
	}
}

// closure expands a state set with every ε-reachable state, returning a
// sorted, deduplicated slice (the canonical key for subset
// construction).
func (n *nfa) closure(states []int) []int {
	seen := make(map[int]bool, len(states)*2)
	stack := append([]int(nil), states...)
	for _, s := range states {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// move returns the states reachable from the set via one edge labelled
// sym (before ε-closure).
func (n *nfa) move(states []int, symName string) []int {
	var out []int
	for _, s := range states {
		out = append(out, n.sym[s][symName]...)
	}
	return out
}

// alphabet returns every symbol labelling some edge, sorted.
func (n *nfa) alphabet() []string {
	set := make(map[string]bool)
	for _, m := range n.sym {
		for s := range m {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
