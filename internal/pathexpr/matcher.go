package pathexpr

import (
	"fmt"
	"strings"
)

// OrderError reports a procedure call that violates the declared
// partial order — the run-time face of the user-process-level faults
// (§2.2 III.a/III.c).
type OrderError struct {
	// Path is the canonical rendering of the violated declaration.
	Path string
	// Call is the offending procedure name.
	Call string
	// History is the accepted call prefix before the offending call.
	History []string
	// Expected lists the procedure names that would have been legal.
	Expected []string
}

// Error implements the error interface.
func (e *OrderError) Error() string {
	hist := "start"
	if len(e.History) > 0 {
		hist = strings.Join(e.History, " ")
	}
	exp := "nothing (path exhausted)"
	if len(e.Expected) > 0 {
		exp = strings.Join(e.Expected, " | ")
	}
	return fmt.Sprintf("pathexpr: call %q violates %q after [%s]; expected %s",
		e.Call, e.Path, hist, exp)
}

// Matcher tracks one process's position in a path expression. Each
// process gets its own Matcher because the paper's ordering constraint
// is per process ("a procedure call to Release cannot precede a
// procedure call to Request by the same process"). A Matcher is not
// safe for concurrent use.
type Matcher struct {
	path    *Path
	state   int
	history []string
}

// NewMatcher returns a matcher positioned at the start of the path.
func (p *Path) NewMatcher() *Matcher {
	return &Matcher{path: p}
}

// Step consumes one procedure call. Calls to procedures the path does
// not mention are ignored (the declared order is a partial order).
// A violating call returns an *OrderError and leaves the matcher state
// unchanged, so detection can continue past the first fault.
func (m *Matcher) Step(call string) error {
	if !m.path.Mentions(call) {
		return nil
	}
	next := m.path.dfa.step(m.state, call)
	if next < 0 {
		return &OrderError{
			Path:     m.path.String(),
			Call:     call,
			History:  append([]string(nil), m.history...),
			Expected: m.path.dfa.expected(m.state),
		}
	}
	m.state = next
	m.history = append(m.history, call)
	return nil
}

// AtCycleBoundary reports whether the calls consumed so far form a
// whole number of path traversals — i.e. the process holds no pending
// obligation (e.g. an Acquire without its Release).
func (m *Matcher) AtCycleBoundary() bool {
	return m.path.dfa.accepting[m.state]
}

// Expected returns the procedure names that are legal next calls.
func (m *Matcher) Expected() []string {
	return m.path.dfa.expected(m.state)
}

// History returns the accepted calls so far.
func (m *Matcher) History() []string {
	return append([]string(nil), m.history...)
}

// Reset returns the matcher to the start of the path and clears the
// history (used by recovery policies after a monitor reset).
func (m *Matcher) Reset() {
	m.state = 0
	m.history = nil
}

// Accepts reports whether the whole word (a full call string) is a
// valid sequence of complete traversals of p. It is a convenience for
// tests and offline checking.
func (p *Path) Accepts(word []string) bool {
	s := 0
	for _, sym := range word {
		s = p.dfa.step(s, sym)
		if s < 0 {
			return false
		}
	}
	return p.dfa.accepting[s]
}

// ValidPrefix reports whether the word can be extended to a valid call
// string (every proper run-time history must satisfy this).
func (p *Path) ValidPrefix(word []string) bool {
	s := 0
	for _, sym := range word {
		s = p.dfa.step(s, sym)
		if s < 0 {
			return false
		}
	}
	return true
}
