package pathexpr

import "strings"

// Expr is a node of a parsed path expression.
type Expr interface {
	// String renders the node in source notation (parenthesised where
	// needed so the output re-parses to an equivalent expression).
	String() string
	// symbols appends the procedure names mentioned by the node.
	symbols(set map[string]bool)
}

// Name is a monitor procedure name.
type Name struct{ Sym string }

// Sequence is "a ; b ; …" — the operands must occur in order.
type Sequence struct{ Parts []Expr }

// Selection is "a , b , …" — exactly one alternative per traversal.
type Selection struct{ Alts []Expr }

// Repetition is "{ e }" — zero or more traversals of e.
type Repetition struct{ Body Expr }

// Option is "[ e ]" — zero or one traversal of e.
type Option struct{ Body Expr }

// String implements Expr.
func (n *Name) String() string { return n.Sym }

// String implements Expr.
func (s *Sequence) String() string {
	parts := make([]string, len(s.Parts))
	for i, p := range s.Parts {
		if sel, ok := p.(*Selection); ok {
			parts[i] = "(" + sel.String() + ")"
		} else {
			parts[i] = p.String()
		}
	}
	return strings.Join(parts, " ; ")
}

// String implements Expr.
func (s *Selection) String() string {
	alts := make([]string, len(s.Alts))
	for i, a := range s.Alts {
		alts[i] = a.String()
	}
	return strings.Join(alts, " , ")
}

// String implements Expr.
func (r *Repetition) String() string { return "{ " + r.Body.String() + " }" }

// String implements Expr.
func (o *Option) String() string { return "[ " + o.Body.String() + " ]" }

func (n *Name) symbols(set map[string]bool)       { set[n.Sym] = true }
func (s *Sequence) symbols(set map[string]bool)   { forEach(s.Parts, set) }
func (s *Selection) symbols(set map[string]bool)  { forEach(s.Alts, set) }
func (r *Repetition) symbols(set map[string]bool) { r.Body.symbols(set) }
func (o *Option) symbols(set map[string]bool)     { o.Body.symbols(set) }

func forEach(es []Expr, set map[string]bool) {
	for _, e := range es {
		e.symbols(set)
	}
}
