package pathexpr

import (
	"fmt"
	"sort"
)

// Path is a compiled path expression: the AST plus the automaton used
// for run-time order checking. Construct with Parse; a Path is
// immutable and safe for concurrent use (each process gets its own
// Matcher).
type Path struct {
	src string
	ast Expr
	dfa *dfa
}

// Parse parses and compiles a path expression. The "path"/"end"
// keywords are optional, so both "path Acquire ; Release end" and
// "Acquire ; Release" are accepted.
func Parse(src string) (*Path, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if p.peek().kind == tokPath {
		p.next()
	}
	ast, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokEnd {
		p.next()
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, &SyntaxError{Pos: tok.pos, Msg: fmt.Sprintf("unexpected %s after expression", tok.kind)}
	}
	n := buildNFA(ast)
	return &Path{src: src, ast: ast, dfa: buildDFA(n)}, nil
}

// MustParse is Parse for statically known expressions; it panics on
// error. Intended for tests and package-level declarations.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the canonical rendering of the expression.
func (p *Path) String() string { return "path " + p.ast.String() + " end" }

// Source returns the original text the Path was parsed from.
func (p *Path) Source() string { return p.src }

// AST returns the root of the parsed expression.
func (p *Path) AST() Expr { return p.ast }

// Symbols returns the procedure names mentioned in the expression,
// sorted.
func (p *Path) Symbols() []string {
	set := make(map[string]bool)
	p.ast.symbols(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Mentions reports whether the expression constrains the given
// procedure name. Calls to unmentioned procedures are not order-checked
// (the paper's partial order only covers the declared procedures).
func (p *Path) Mentions(sym string) bool {
	set := make(map[string]bool)
	p.ast.symbols(set)
	return set[sym]
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %s, found %s", k, t.kind)}
	}
	return p.next(), nil
}

// parseExpr = seq { "," seq } .
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokComma {
		return first, nil
	}
	alts := []Expr{first}
	for p.peek().kind == tokComma {
		p.next()
		alt, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, alt)
	}
	return &Selection{Alts: alts}, nil
}

// parseSeq = term { ";" term } .
func (p *parser) parseSeq() (Expr, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokSemi {
		return first, nil
	}
	parts := []Expr{first}
	for p.peek().kind == tokSemi {
		p.next()
		part, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return &Sequence{Parts: parts}, nil
}

// parseTerm = ident | "(" expr ")" | "{" expr "}" | "[" expr "]" .
func (p *parser) parseTerm() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokIdent:
		p.next()
		return &Name{Sym: t.text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return &Repetition{Body: e}, nil
	case tokLBrack:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
		return &Option{Body: e}, nil
	default:
		return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected a procedure name or '(', '{', '[', found %s", t.kind)}
	}
}
