package pathexpr

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	t.Parallel()
	cases := []struct {
		src  string
		want string // canonical String()
	}{
		{"path Acquire ; Release end", "path Acquire ; Release end"},
		{"Acquire ; Release", "path Acquire ; Release end"},
		{"path Send , Receive end", "path Send , Receive end"},
		{"path a ; (b , c) ; d end", "path a ; (b , c) ; d end"},
		{"path { Read } ; Write end", "path { Read } ; Write end"},
		{"path [ Init ] ; Work end", "path [ Init ] ; Work end"},
		{"path Open ; { Read , Write } ; Close end", "path Open ; { Read , Write } ; Close end"},
		{"onlyone", "path onlyone end"},
		{"path x_1 ; y2 end", "path x_1 ; y2 end"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.src, func(t *testing.T) {
			t.Parallel()
			p, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tc.src, err)
			}
			if got := p.String(); got != tc.want {
				t.Fatalf("String() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []string{
		"",
		"path end",
		"path ; end",
		"path a ;; b end",
		"path (a ; b end",
		"path a ) end",
		"path { a end",
		"path [ a } end",
		"path a b end", // juxtaposition is not an operator
		"path a ; b end trailing",
		"path 3 end",
		"path a-b end",
	}
	for _, src := range cases {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			if _, err := Parse(src); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", src)
			}
		})
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	t.Parallel()
	_, err := Parse("path a ? b end")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v is not a *SyntaxError", err)
	}
	if serr.Pos != 7 {
		t.Fatalf("SyntaxError.Pos = %d, want 7", serr.Pos)
	}
}

func TestCanonicalStringReparses(t *testing.T) {
	t.Parallel()
	srcs := []string{
		"path Acquire ; Release end",
		"path a ; (b , c) ; d end",
		"path { a , b ; c } end",
		"path [ a ; { b } ] ; c end",
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("canonical form unstable: %q vs %q", p1.String(), p2.String())
		}
	}
}

func TestSymbolsAndMentions(t *testing.T) {
	t.Parallel()
	p := MustParse("path Open ; { Read , Write } ; Close end")
	got := p.Symbols()
	want := []string{"Close", "Open", "Read", "Write"}
	if len(got) != len(want) {
		t.Fatalf("Symbols = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", got, want)
		}
	}
	if !p.Mentions("Read") || p.Mentions("Seek") {
		t.Fatal("Mentions gave wrong answers")
	}
}

func TestAcceptsAcquireRelease(t *testing.T) {
	t.Parallel()
	p := MustParse("path Acquire ; Release end")
	cases := []struct {
		word   []string
		accept bool
		prefix bool
	}{
		{nil, true, true},
		{[]string{"Acquire"}, false, true},
		{[]string{"Acquire", "Release"}, true, true},
		{[]string{"Acquire", "Release", "Acquire"}, false, true},
		{[]string{"Acquire", "Release", "Acquire", "Release"}, true, true},
		{[]string{"Release"}, false, false},
		{[]string{"Acquire", "Acquire"}, false, false},
	}
	for _, tc := range cases {
		if got := p.Accepts(tc.word); got != tc.accept {
			t.Errorf("Accepts(%v) = %v, want %v", tc.word, got, tc.accept)
		}
		if got := p.ValidPrefix(tc.word); got != tc.prefix {
			t.Errorf("ValidPrefix(%v) = %v, want %v", tc.word, got, tc.prefix)
		}
	}
}

func TestMatcherDetectsOrderingFaults(t *testing.T) {
	t.Parallel()
	p := MustParse("path Acquire ; Release end")

	m := p.NewMatcher()
	// User-level fault III.a: release before acquire.
	err := m.Step("Release")
	var oe *OrderError
	if !errors.As(err, &oe) {
		t.Fatalf("Step(Release) = %v, want *OrderError", err)
	}
	if oe.Call != "Release" || len(oe.Expected) != 1 || oe.Expected[0] != "Acquire" {
		t.Fatalf("OrderError = %+v", oe)
	}
	if !strings.Contains(oe.Error(), "Release") {
		t.Fatalf("Error() = %q, want mention of the call", oe.Error())
	}

	// User-level fault III.c: acquire twice without release.
	m2 := p.NewMatcher()
	if err := m2.Step("Acquire"); err != nil {
		t.Fatalf("Step(Acquire): %v", err)
	}
	if err := m2.Step("Acquire"); err == nil {
		t.Fatal("double Acquire accepted")
	}
}

func TestMatcherViolationLeavesStateUsable(t *testing.T) {
	t.Parallel()
	p := MustParse("path Acquire ; Release end")
	m := p.NewMatcher()
	if err := m.Step("Acquire"); err != nil {
		t.Fatal(err)
	}
	if err := m.Step("Acquire"); err == nil {
		t.Fatal("double Acquire accepted")
	}
	// The failed step must not corrupt the matcher: Release is still the
	// expected continuation.
	if err := m.Step("Release"); err != nil {
		t.Fatalf("Step(Release) after violation: %v", err)
	}
	if !m.AtCycleBoundary() {
		t.Fatal("matcher not at cycle boundary after Acquire Release")
	}
}

func TestMatcherIgnoresUnmentionedProcedures(t *testing.T) {
	t.Parallel()
	p := MustParse("path Acquire ; Release end")
	m := p.NewMatcher()
	if err := m.Step("Status"); err != nil {
		t.Fatalf("unmentioned procedure rejected: %v", err)
	}
	if len(m.History()) != 0 {
		t.Fatal("unmentioned procedure recorded in history")
	}
}

func TestMatcherCycleBoundaryAndReset(t *testing.T) {
	t.Parallel()
	p := MustParse("path Acquire ; Release end")
	m := p.NewMatcher()
	if !m.AtCycleBoundary() {
		t.Fatal("fresh matcher must be at a cycle boundary")
	}
	if err := m.Step("Acquire"); err != nil {
		t.Fatal(err)
	}
	if m.AtCycleBoundary() {
		t.Fatal("pending Release but AtCycleBoundary = true")
	}
	exp := m.Expected()
	if len(exp) != 1 || exp[0] != "Release" {
		t.Fatalf("Expected = %v, want [Release]", exp)
	}
	m.Reset()
	if !m.AtCycleBoundary() || len(m.History()) != 0 {
		t.Fatal("Reset did not restore the start state")
	}
}

func TestSelectionAllowsEitherAlternative(t *testing.T) {
	t.Parallel()
	p := MustParse("path Send , Receive end")
	for _, word := range [][]string{
		{"Send"},
		{"Receive"},
		{"Send", "Receive", "Receive", "Send"},
	} {
		if !p.Accepts(word) {
			t.Errorf("Accepts(%v) = false, want true", word)
		}
	}
}

func TestRepetitionAndOption(t *testing.T) {
	t.Parallel()
	p := MustParse("path Open ; { Read } ; [ Sync ] ; Close end")
	accepted := [][]string{
		{"Open", "Close"},
		{"Open", "Read", "Close"},
		{"Open", "Read", "Read", "Read", "Sync", "Close"},
		{"Open", "Sync", "Close", "Open", "Close"},
	}
	rejected := [][]string{
		{"Read"},
		{"Open", "Sync", "Sync", "Close"},
		{"Open", "Close", "Read"},
	}
	for _, w := range accepted {
		if !p.Accepts(w) {
			t.Errorf("Accepts(%v) = false, want true", w)
		}
	}
	for _, w := range rejected {
		if p.ValidPrefix(w) && p.Accepts(w) {
			t.Errorf("Accepts(%v) = true, want false", w)
		}
	}
}

// genWord draws a random word from the language of e (one full
// traversal), appending to w.
func genWord(rng *rand.Rand, e Expr, w []string) []string {
	switch e := e.(type) {
	case *Name:
		return append(w, e.Sym)
	case *Sequence:
		for _, p := range e.Parts {
			w = genWord(rng, p, w)
		}
		return w
	case *Selection:
		return genWord(rng, e.Alts[rng.Intn(len(e.Alts))], w)
	case *Repetition:
		for n := rng.Intn(3); n > 0; n-- {
			w = genWord(rng, e.Body, w)
		}
		return w
	case *Option:
		if rng.Intn(2) == 0 {
			return genWord(rng, e.Body, w)
		}
		return w
	default:
		return w
	}
}

// genExpr builds a random AST of bounded depth over a small alphabet.
func genExpr(rng *rand.Rand, depth int) Expr {
	names := []string{"a", "b", "c", "d"}
	if depth <= 0 {
		return &Name{Sym: names[rng.Intn(len(names))]}
	}
	switch rng.Intn(5) {
	case 0:
		return &Name{Sym: names[rng.Intn(len(names))]}
	case 1:
		n := rng.Intn(2) + 2
		parts := make([]Expr, n)
		for i := range parts {
			parts[i] = genExpr(rng, depth-1)
		}
		return &Sequence{Parts: parts}
	case 2:
		n := rng.Intn(2) + 2
		alts := make([]Expr, n)
		for i := range alts {
			alts[i] = genExpr(rng, depth-1)
		}
		return &Selection{Alts: alts}
	case 3:
		return &Repetition{Body: genExpr(rng, depth-1)}
	default:
		return &Option{Body: genExpr(rng, depth-1)}
	}
}

// TestQuickGeneratedWordsAccepted: any concatenation of full traversals
// sampled from the expression itself must be accepted by the compiled
// DFA, and every prefix of it must be a valid prefix.
func TestQuickGeneratedWordsAccepted(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ast := genExpr(rng, 3)
		p, err := Parse("path " + ast.String() + " end")
		if err != nil {
			return false
		}
		var word []string
		for cycles := rng.Intn(3) + 1; cycles > 0; cycles-- {
			word = genWord(rng, ast, word)
		}
		if !p.Accepts(word) {
			t.Logf("expr %q rejected generated word %v", ast.String(), word)
			return false
		}
		for i := range word {
			if !p.ValidPrefix(word[:i]) {
				t.Logf("expr %q rejected prefix %v", ast.String(), word[:i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatcherAgreesWithAccepts: stepping a matcher through a word
// symbol by symbol agrees with the whole-word primitives.
func TestQuickMatcherAgreesWithAccepts(t *testing.T) {
	t.Parallel()
	f := func(seed int64, raw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ast := genExpr(rng, 3)
		p, err := Parse("path " + ast.String() + " end")
		if err != nil {
			return false
		}
		names := []string{"a", "b", "c", "d"}
		m := p.NewMatcher()
		var word []string
		for _, r := range raw {
			sym := names[int(r)%len(names)]
			err := m.Step(sym)
			if !p.Mentions(sym) {
				// Unmentioned procedures are outside the declared partial
				// order: the matcher must accept them and stay put.
				if err != nil {
					return false
				}
				continue
			}
			wordIfTaken := append(append([]string(nil), word...), sym)
			valid := p.ValidPrefix(wordIfTaken)
			if (err == nil) != valid {
				t.Logf("expr %q word %v sym %q: matcher=%v validPrefix=%v",
					ast.String(), word, sym, err == nil, valid)
				return false
			}
			if err == nil {
				word = wordIfTaken
			}
			if m.AtCycleBoundary() != p.Accepts(word) {
				t.Logf("expr %q word %v: boundary disagreement", ast.String(), word)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on invalid input")
		}
	}()
	MustParse("path ; end")
}

func TestSourcePreserved(t *testing.T) {
	t.Parallel()
	src := "Acquire ; Release"
	if got := MustParse(src).Source(); got != src {
		t.Fatalf("Source() = %q, want %q", got, src)
	}
}
