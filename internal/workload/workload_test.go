package workload

import (
	"testing"
	"testing/quick"
	"time"

	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/apps/kvstore"
	"robustmon/internal/detect"
	"robustmon/internal/history"
	"robustmon/internal/monitor"
	"robustmon/internal/proc"
)

func TestGenDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 42, Procs: 4, OpsPerProc: 10, Think: 8}
	a := NewGen(cfg).Coordinator()
	b := NewGen(cfg).Coordinator()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("script %d differs", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatalf("script %d op %d differs: %+v vs %+v", i, j, a[i].Ops[j], b[i].Ops[j])
			}
		}
	}
}

func TestCoordinatorScriptsBalanced(t *testing.T) {
	t.Parallel()
	f := func(seed int64, procs, ops uint8) bool {
		g := NewGen(Config{Seed: seed, Procs: int(procs%8) + 1, OpsPerProc: int(ops%20) + 1})
		totals := Totals(g.Coordinator())
		return totals[OpSend] == totals[OpReceive] && totals[OpSend] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorScriptsBalanced(t *testing.T) {
	t.Parallel()
	f := func(seed int64, procs, ops uint8) bool {
		g := NewGen(Config{Seed: seed, Procs: int(procs%8) + 1, OpsPerProc: int(ops%20) + 1})
		totals := Totals(g.Allocator())
		return totals[OpAcquire] == totals[OpRelease] && totals[OpAcquire] > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestThinkInsertsSpins(t *testing.T) {
	t.Parallel()
	g := NewGen(Config{Seed: 1, Procs: 2, OpsPerProc: 5, Think: 100})
	spins := 0
	for _, s := range g.Manager() {
		for _, op := range s.Ops {
			if op.Kind == OpSpin {
				spins++
				if op.Arg < 1 || op.Arg > 100 {
					t.Fatalf("spin arg %d out of range", op.Arg)
				}
			}
		}
	}
	if spins == 0 {
		t.Fatal("Think > 0 produced no spin ops")
	}
}

func TestOpKindString(t *testing.T) {
	t.Parallel()
	for k := OpSend; k <= OpSpin; k++ {
		if k.String() == "" || k.String()[0] == 'O' {
			t.Fatalf("OpKind(%d).String() = %q", int(k), k.String())
		}
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Fatal("unknown kind not handled")
	}
}

// TestSoakAllWorkloadsFaultFree is the integration soak: all three
// monitor classes run generated workloads under full recording and a
// fast periodic detector on the real clock; no violations may appear
// and the monitors must drain. This is the no-false-positives property
// at system scale.
func TestSoakAllWorkloadsFaultFree(t *testing.T) {
	t.Parallel()
	seeds := []int64{3, 17}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			g := NewGen(Config{Seed: seed, Procs: 6, OpsPerProc: 200, Think: 50})

			db := history.New()
			buf, err := boundedbuffer.New(3,
				boundedbuffer.WithName("soak-buf"),
				boundedbuffer.WithMonitorOptions(monitor.WithRecorder(db)))
			if err != nil {
				t.Fatal(err)
			}
			alloc, err := allocator.New(2,
				allocator.WithName("soak-alloc"),
				allocator.WithMonitorOptions(monitor.WithRecorder(db)))
			if err != nil {
				t.Fatal(err)
			}
			store, err := kvstore.New(
				kvstore.WithName("soak-kv"),
				kvstore.WithMonitorOptions(monitor.WithRecorder(db)))
			if err != nil {
				t.Fatal(err)
			}
			det := detect.New(db, detect.Config{
				Tmax: time.Minute, Tio: time.Minute, Tlimit: time.Minute,
				HoldWorld: true,
			}, buf.Monitor(), alloc.Monitor(), store.Monitor())

			stop := make(chan struct{})
			tickerDone := make(chan struct{})
			go func() {
				defer close(tickerDone)
				for {
					select {
					case <-stop:
						return
					case <-time.After(2 * time.Millisecond):
						det.CheckNow()
					}
				}
			}()

			rt := proc.NewRuntime()
			RunCoordinator(rt, buf, g.Coordinator())
			rt2 := proc.NewRuntime()
			RunAllocator(rt2, alloc, g.Allocator())
			rt3 := proc.NewRuntime()
			RunManager(rt3, store, g.Manager())
			close(stop)
			<-tickerDone

			if vs := det.CheckNow(); len(vs) != 0 {
				t.Fatalf("final check: %v", vs)
			}
			if all := det.Violations(); len(all) != 0 {
				t.Fatalf("soak produced %d violations; first: %v", len(all), all[0])
			}
			if buf.Len() != 0 {
				t.Fatalf("buffer not drained: %d items", buf.Len())
			}
			if alloc.Free() != alloc.Units() {
				t.Fatalf("allocator not drained: free=%d", alloc.Free())
			}
		})
	}
}
