// Package workload generates deterministic, seed-reproducible workloads
// for the evaluation harness and stress tests: scripted sequences of
// monitor procedure calls for each of the paper's three monitor
// classes, balanced so a fault-free run always terminates (every Send
// has a Receive, every Acquire its Release).
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"robustmon/internal/apps/allocator"
	"robustmon/internal/apps/boundedbuffer"
	"robustmon/internal/apps/kvstore"
	"robustmon/internal/proc"
)

// OpKind is one scripted operation type.
type OpKind int

// The scripted operations.
const (
	// OpSend deposits Arg into a bounded buffer.
	OpSend OpKind = iota + 1
	// OpReceive takes one item from a bounded buffer.
	OpReceive
	// OpAcquire takes one allocator unit.
	OpAcquire
	// OpRelease returns the allocator unit.
	OpRelease
	// OpPut stores key K with value V in the kv store.
	OpPut
	// OpGet reads key K.
	OpGet
	// OpDelete removes key K.
	OpDelete
	// OpSpin burns Arg iterations of CPU between monitor calls (think
	// time, so workloads are not pure lock-ping-pong).
	OpSpin
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpReceive:
		return "receive"
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpSpin:
		return "spin"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one scripted operation.
type Op struct {
	Kind OpKind
	// Arg is the payload for OpSend / spin count for OpSpin.
	Arg int
	// Key is the key for kv-store operations.
	Key string
}

// Script is the operation sequence of one process.
type Script struct {
	Name string
	Ops  []Op
}

// Config parameterises generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// Procs is the number of processes (scripts).
	Procs int
	// OpsPerProc is the approximate number of monitor operations per
	// process.
	OpsPerProc int
	// Think inserts an OpSpin of up to this many iterations between
	// monitor calls (0 disables).
	Think int
}

// Gen generates scripts. Construct with NewGen.
type Gen struct {
	cfg Config
	rng *rand.Rand
}

// NewGen returns a generator; invalid fields are clamped to minimums.
func NewGen(cfg Config) *Gen {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.OpsPerProc < 1 {
		cfg.OpsPerProc = 1
	}
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (g *Gen) think(ops []Op) []Op {
	if g.cfg.Think <= 0 {
		return ops
	}
	return append(ops, Op{Kind: OpSpin, Arg: 1 + g.rng.Intn(g.cfg.Think)})
}

// Coordinator generates producer and consumer scripts with balanced
// totals: half the processes send, half receive, and the grand totals
// match so the run drains completely.
func (g *Gen) Coordinator() []Script {
	producers := g.cfg.Procs / 2
	if producers == 0 {
		producers = 1
	}
	consumers := g.cfg.Procs - producers
	if consumers == 0 {
		consumers = 1
	}
	total := producers * g.cfg.OpsPerProc
	scripts := make([]Script, 0, producers+consumers)
	for i := 0; i < producers; i++ {
		var ops []Op
		for j := 0; j < g.cfg.OpsPerProc; j++ {
			ops = append(ops, Op{Kind: OpSend, Arg: g.rng.Int()})
			ops = g.think(ops)
		}
		scripts = append(scripts, Script{Name: fmt.Sprintf("producer%d", i), Ops: ops})
	}
	// Distribute the receives across consumers, remainder to the first.
	per := total / consumers
	rem := total % consumers
	for i := 0; i < consumers; i++ {
		n := per
		if i == 0 {
			n += rem
		}
		var ops []Op
		for j := 0; j < n; j++ {
			ops = append(ops, Op{Kind: OpReceive})
			ops = g.think(ops)
		}
		scripts = append(scripts, Script{Name: fmt.Sprintf("consumer%d", i), Ops: ops})
	}
	return scripts
}

// Allocator generates well-behaved acquire/release cycles with random
// cycle counts around OpsPerProc/2.
func (g *Gen) Allocator() []Script {
	scripts := make([]Script, 0, g.cfg.Procs)
	for i := 0; i < g.cfg.Procs; i++ {
		cycles := g.cfg.OpsPerProc / 2
		if cycles < 1 {
			cycles = 1
		}
		cycles += g.rng.Intn(cycles + 1)
		var ops []Op
		for j := 0; j < cycles; j++ {
			ops = append(ops, Op{Kind: OpAcquire})
			ops = g.think(ops)
			ops = append(ops, Op{Kind: OpRelease})
			ops = g.think(ops)
		}
		scripts = append(scripts, Script{Name: fmt.Sprintf("user%d", i), Ops: ops})
	}
	return scripts
}

// Manager generates a put/get/delete mix over a small key space.
func (g *Gen) Manager() []Script {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	scripts := make([]Script, 0, g.cfg.Procs)
	for i := 0; i < g.cfg.Procs; i++ {
		var ops []Op
		for j := 0; j < g.cfg.OpsPerProc; j++ {
			key := keys[g.rng.Intn(len(keys))]
			switch g.rng.Intn(4) {
			case 0, 1:
				ops = append(ops, Op{Kind: OpPut, Key: key, Arg: g.rng.Int()})
			case 2:
				ops = append(ops, Op{Kind: OpGet, Key: key})
			default:
				ops = append(ops, Op{Kind: OpDelete, Key: key})
			}
			ops = g.think(ops)
		}
		scripts = append(scripts, Script{Name: fmt.Sprintf("client%d", i), Ops: ops})
	}
	return scripts
}

// spinSink defeats dead-code elimination of the OpSpin busy loop;
// atomic because every scripted process spins concurrently.
var spinSink atomic.Int64

func spin(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	spinSink.Store(int64(s))
}

// RunCoordinator executes coordinator scripts against a bounded buffer,
// one process per script, and waits for completion.
func RunCoordinator(rt *proc.Runtime, buf *boundedbuffer.Buffer, scripts []Script) {
	for _, s := range scripts {
		s := s
		rt.Spawn(s.Name, func(p *proc.P) {
			for _, op := range s.Ops {
				switch op.Kind {
				case OpSend:
					if err := buf.Send(p, op.Arg); err != nil {
						return
					}
				case OpReceive:
					if _, err := buf.Receive(p); err != nil {
						return
					}
				case OpSpin:
					spin(op.Arg)
				}
			}
		})
	}
	rt.Join()
}

// RunAllocator executes allocator scripts against an allocator.
func RunAllocator(rt *proc.Runtime, alloc *allocator.Allocator, scripts []Script) {
	for _, s := range scripts {
		s := s
		rt.Spawn(s.Name, func(p *proc.P) {
			for _, op := range s.Ops {
				switch op.Kind {
				case OpAcquire:
					if err := alloc.Acquire(p); err != nil {
						return
					}
				case OpRelease:
					if err := alloc.Release(p); err != nil {
						return
					}
				case OpSpin:
					spin(op.Arg)
				}
			}
		})
	}
	rt.Join()
}

// RunManager executes manager scripts against a kv store.
func RunManager(rt *proc.Runtime, store *kvstore.Store, scripts []Script) {
	for _, s := range scripts {
		s := s
		rt.Spawn(s.Name, func(p *proc.P) {
			for _, op := range s.Ops {
				switch op.Kind {
				case OpPut:
					if err := store.Put(p, op.Key, "v"); err != nil {
						return
					}
				case OpGet:
					if _, _, err := store.Get(p, op.Key); err != nil {
						return
					}
				case OpDelete:
					if err := store.Delete(p, op.Key); err != nil {
						return
					}
				case OpSpin:
					spin(op.Arg)
				}
			}
		})
	}
	rt.Join()
}

// Totals tallies the monitor operations in a set of scripts (excluding
// think time), useful for assertions and reporting.
func Totals(scripts []Script) map[OpKind]int {
	out := make(map[OpKind]int)
	for _, s := range scripts {
		for _, op := range s.Ops {
			if op.Kind != OpSpin {
				out[op.Kind]++
			}
		}
	}
	return out
}
