package history

import (
	"sync"

	"robustmon/internal/event"
)

// Pooled segment slices. The record path's steady-state garbage used
// to be the segment slabs themselves: every drain handed the shard's
// backing array to the consumer and left nil behind, so the next
// append cycle regrew a fresh slab from zero (log₂ n allocations plus
// copies), and the GC then had to scan and reclaim the pointer-dense
// drained slab. At millions of events per second that dominates the
// whole hot loop — the CPU profile is runtime.scanobject, not
// history.Append. Two changes remove it:
//
//   - A full drain swaps slabs instead of abandoning them: the shard
//     hands its slab to the consumer and installs a replacement sized
//     for the burst it just drained, so no drain rhythm ever regrows a
//     slab from zero.
//
//   - Consumers which exclusively own a drained segment refill the
//     slab pool via DB.Recycle. With a recycling consumer (the E6
//     record-path harness; any tool that drains, uses, and discards)
//     the slab cycles shard → consumer → pool → shard and the record
//     path allocates nothing per event in steady state.
//
// Consumers that never call Recycle lose nothing: the handed-off slabs
// are ordinary garbage, and the pool's classes are refilled by fresh
// class-capacity allocations — one bounded make per drain instead of a
// regrowth series per drain.
//
// Pool hygiene: every pooled slab has exactly a class capacity
// (Recycle reslices odd append-grown capacities down to the class
// below, so a Get always returns the capacity its class promises), and
// pooled slabs hold no stale events — Recycle clears the written
// prefix, and every other slab source (make, append growth) starts
// zeroed. Two bounded retention exceptions, both unreachable through
// any pooled slice: the region a partial drain advanced past, and the
// tail a reslice cut off. Each can pin at most one slab's worth of
// already-drained events until the backing array is overwritten or
// collected.

// maxRetainedCap bounds the slab capacity the pool accepts and the
// replacement size a drain installs. Checkpoint-rhythm segments are a
// few hundred to a few thousand events; the top class covers bursts
// without letting a single spike park megabytes in the pool forever.
const maxRetainedCap = 16384

// segClasses are the pooled capacity classes (in events), smallest
// first — power-of-two steps so an append-grown slab rounds down to a
// nearby class instead of wasting half its capacity, and so the class
// a burst hints at is never far above the burst.
var segClasses = [...]int{1024, 2048, 4096, 8192, maxRetainedCap}

var segPools [len(segClasses)]sync.Pool

// classFor returns the index of the smallest class holding hint, or -1
// when hint exceeds the top class.
func classFor(hint int) int {
	for i, class := range segClasses {
		if hint <= class {
			return i
		}
	}
	return -1
}

// slabFor returns a zero-length slab with capacity at least hint: a
// pooled slab when one is available, a fresh class-capacity allocation
// for class-sized hints (so drain rhythms stay one-alloc-per-drain
// even when nothing recycles), and nil for hints below the smallest
// class (a small shard regrows naturally — eagerly allocating the
// smallest class for a trickle would cost more than it saves) or
// beyond the largest (unpoolable anyway). pooled reports whether the
// slab came out of the pool — the hit/miss signal the obs counters
// publish.
func slabFor(hint int) (slab []event.Event, pooled bool) {
	i := classFor(hint)
	if i < 0 {
		return nil, false
	}
	if p, _ := segPools[i].Get().(*[]event.Event); p != nil {
		return *p, true
	}
	if hint < segClasses[0] {
		return nil, false
	}
	return make([]event.Event, 0, segClasses[i]), false
}

// newSegment returns a length-n slice for a drained segment copy, from
// the pool when possible (an allocation beyond the top class will not
// be pooled on Recycle). pooled reports a pool hit, as in slabFor.
func newSegment(n int) (seg event.Seq, pooled bool) {
	if s, hit := slabFor(n); s != nil {
		return s[:n], hit
	}
	if i := classFor(n); i >= 0 {
		return make(event.Seq, n, segClasses[i]), false
	}
	return make(event.Seq, n), false
}

// Recycle returns a drained segment's backing array to the segment
// pool. Only call it when the segment is exclusively owned and dead:
// the caller drained it itself, no drain tee is installed (an exporter
// retains drained segments until written), and nothing else holds a
// reference. Recycling a shared segment corrupts whatever the other
// holder reads next — when in doubt, don't: an unrecycled segment is
// merely garbage. The written prefix is cleared (it is pointer-dense;
// a pooled slab must not pin event strings) and the capacity is
// normalised down to its class before pooling; oversized and
// undersized slices fall to the GC.
func (db *DB) Recycle(seg event.Seq) {
	c := cap(seg)
	if c < segClasses[0] || c > maxRetainedCap {
		return
	}
	s := []event.Event(seg)
	clear(s)
	for i := len(segClasses) - 1; i >= 0; i-- {
		if c >= segClasses[i] {
			s = s[:0:segClasses[i]]
			segPools[i].Put(&s)
			db.met.recycles.Inc()
			return
		}
	}
}

// drainSegmentLocked cuts the first n events out of s.segment as an
// exclusively-owned segment and leaves the shard ready to record.
// Caller holds s.mu.
//
// A full drain is a swap, not a copy: ownership of the slab transfers
// to the caller and the shard installs a replacement sized by the
// drained burst (or nil for a trickle — appends then regrow naturally,
// which is the pre-pool behaviour). A slab that grew past
// maxRetainedCap is handed off the same way but would be rejected by
// Recycle, so a pathological burst cannot park megabytes in the pool.
//
// A partial cut (DrainMonitorUpTo's bounded batches) copies the
// prefix out into a pooled segment and advances the slab in place —
// repeated batch drains of a long backlog stay O(n) total, not
// O(n²/batch), and the handed-out prefix shares nothing with the
// events left buffered.
func (s *shard) drainSegmentLocked(n int) event.Seq {
	if n == 0 {
		return nil
	}
	s.met.drainEvents.Observe(int64(n))
	if n == len(s.segment) {
		seg := event.Seq(s.segment)
		slab, pooled := slabFor(n)
		s.segment = slab
		// A nil slab is a deliberate trickle-path non-allocation, neither
		// hit nor miss.
		if pooled {
			s.met.poolHit.Inc()
		} else if slab != nil {
			s.met.poolMiss.Inc()
		}
		return seg
	}
	out, pooled := newSegment(n)
	if pooled {
		s.met.poolHit.Inc()
	} else {
		s.met.poolMiss.Inc()
	}
	copy(out, s.segment[:n])
	s.segment = s.segment[n:]
	return out
}
