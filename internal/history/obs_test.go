package history

import (
	"testing"

	"robustmon/internal/event"
	"robustmon/internal/obs"
)

// TestWithObsCountsRecordPath drives every instrumented layer of the
// record path — singleton appends, a batch publication, partial and
// full drains, slab recycling — and checks the registry against the
// exactly-known traffic. The drain sizes are chosen at the smallest
// pool class (1024) so the hit/miss/recycle sequence is deterministic:
// the first drain must miss (cold pool), recycled slabs must hit.
func TestWithObsCountsRecordPath(t *testing.T) {
	reg := obs.NewRegistry()
	db := New(WithObs(reg))
	for i := int64(1); i <= 3000; i++ {
		db.Append(ev(i))
	}
	batch := make([]event.Event, 10)
	for i := range batch {
		batch[i] = ev(int64(4000 + i))
	}
	db.AppendBatch("m", batch)
	horizon := db.LastSeq()

	// Partial cut: copies into a fresh class-1024 segment (cold pool →
	// miss), which Recycle then returns to exactly that class.
	seg1, more := db.DrainMonitorUpTo("m", horizon, 1024)
	if len(seg1) != 1024 || !more {
		t.Fatalf("first cut: %d events, more=%v", len(seg1), more)
	}
	db.Recycle(seg1)

	// Second cut: served by the slab just recycled — a pool hit.
	seg2, _ := db.DrainMonitorUpTo("m", horizon, 1024)
	if len(seg2) != 1024 {
		t.Fatalf("second cut: %d events", len(seg2))
	}
	db.Recycle(seg2)

	// The remainder (962 events) drains whole: the swap path asks the
	// pool for a replacement slab and finds seg2's again.
	seg3, more := db.DrainMonitorUpTo("m", horizon, 1024)
	if len(seg3) != 962 || more {
		t.Fatalf("final cut: %d events, more=%v", len(seg3), more)
	}

	snap := reg.Snapshot()
	for _, c := range []struct {
		metric string
		want   int64
	}{
		{"history_append_total", 3000},
		{"history_append_batch_total", 1},
		{"history_append_batch_events_total", 10},
		{"history_pool_miss_total", 1},
		{"history_pool_hit_total", 2},
		{"history_slab_recycle_total", 2},
	} {
		if got, ok := snap.Counter(c.metric); !ok || got != c.want {
			t.Errorf("%s = %d (ok=%v), want %d", c.metric, got, ok, c.want)
		}
	}
	h, ok := snap.Histogram("history_drain_events")
	if !ok || h.Count != 3 || h.Sum != 3010 {
		t.Errorf("history_drain_events count=%d sum=%d (ok=%v), want 3 drains totalling 3010", h.Count, h.Sum, ok)
	}
}
