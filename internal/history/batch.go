package history

import (
	"robustmon/internal/event"
)

// Batched publication: the raw-speed record path. Append pays one
// shard-lock acquire, one global-sequence atomic and two counter
// atomics per event; at millions of events per second those per-event
// costs dominate the whole pipeline (checking moved off the hot path
// long ago). AppendBatch publishes a block of events under a single
// lock acquire, claiming a contiguous sequence range with one atomic
// add, and BatchWriter gives each producer a lock-free staging buffer
// so the block forms without touching any shared state at all.
//
// Semantics are pinned to "N singleton Appends executed at
// publication time": a batch's events receive consecutive global
// sequence numbers claimed under the shard lock, so every shard
// segment stays seq-sorted, drains still return consistent prefixes
// of the global order, and a batch is either wholly visible to a
// drain or not at all. What batching gives up is only *when* an event
// enters the global order — a staged event is invisible (and owns no
// sequence number) until its writer flushes. The explicit handshake
// for that: the detector calls DB.FlushMonitorWriters at every
// checkpoint while the monitors being checkpointed are frozen, so
// hold-world and per-monitor checkpoints observe exactly the events a
// serial singleton-Append run would have recorded (see the flush
// handshake in internal/detect and the byte-identical export
// acceptance test in internal/export).

// DefaultBatchSize is the BatchWriter staging capacity when
// NewBatchWriter is given a non-positive size: large enough to
// amortise the shard lock to noise, small enough that a flush stays
// cache-friendly and checkpoint flushes stay cheap.
const DefaultBatchSize = 256

// AppendBatch records every event in events under the named monitor's
// shard lock in one acquire, assigning them a contiguous block of
// global sequence numbers (one atomic claim for the whole batch). It
// returns the first and last sequence numbers assigned (0, 0 for an
// empty batch). Every event's Monitor field is overwritten with the
// given monitor name, mirroring what monitor.record does on the
// singleton path; events with mixed destinations must be split by the
// caller (one BatchWriter per monitor does).
//
// The events are copied into the shard, and the input slice is
// modified only to stamp Seq and Monitor — the caller may reuse its
// backing array immediately, which is what lets BatchWriter run
// allocation-free in steady state.
func (db *DB) AppendBatch(monitor string, events []event.Event) (first, last int64) {
	n := int64(len(events))
	if n == 0 {
		return 0, 0
	}
	s := db.shardFor(monitor)
	c := s.counter
	if c == nil { // WithGlobalLock: shared shard, per-monitor counters
		c = db.counterFor(monitor)
	}
	s.mu.Lock()
	// Claimed under the shard lock, like Append: the shard's segment
	// stays sorted by global sequence number, and no concurrent
	// publisher can interleave inside the claimed range.
	base := db.nextSeq.Add(n) - n
	for i := range events {
		events[i].Seq = base + int64(i) + 1
		events[i].Monitor = monitor
	}
	s.segment = append(s.segment, events...)
	if db.keepFull {
		s.full = append(s.full, events...)
	}
	s.mu.Unlock()
	// Counters are atomics read lock-free by rate estimators; updating
	// them outside the critical section shortens the hot path and only
	// delays visibility by nanoseconds.
	db.total.Add(n)
	c.n.Add(n)
	db.met.batches.Inc()
	db.met.batchEvents.Add(n)
	return base + 1, base + n
}

// BatchWriter stages one monitor's events in a fixed-size local buffer
// and publishes them to the database in blocks via AppendBatch — one
// shard-lock acquire and one sequence claim per block instead of per
// event, and not a single shared-memory operation on the staging path.
// Construct with DB.NewBatchWriter; it implements monitor.Recorder, so
// the natural wiring is one writer per monitor:
//
//	w := db.NewBatchWriter(spec.Name, 0)
//	mon, _ := monitor.New(spec, monitor.WithRecorder(w))
//
// # Synchronization contract
//
// A writer is deliberately lock-free: exactly one producer — the
// goroutine(s) serialised by the owning monitor's mutex, or one
// direct-producer goroutine — may call Append, Flush, Pending or
// Close. The checkpoint handshake (DB.FlushMonitorWriters) may flush
// a writer from another goroutine only while its producer is
// quiescent under a happens-before edge; the detector has exactly
// that edge for monitor-fed writers, because monitor.record runs
// under the checkpoint gate's read lock and the detector flushes
// while holding the freeze (the gate's write lock). Direct producers
// are not covered by any freeze: they flush their own writer (or
// Close it) before the events are needed, e.g. before a standalone
// Drain. An event for a different monitor than the writer is bound to
// is published immediately through the singleton DB.Append — correct,
// just unamortised — so a misrouted event can never sit invisibly in
// the wrong writer.
type BatchWriter struct {
	db      *DB
	monitor string
	// buf is the staging block: fixed capacity, appended in place,
	// reset to length zero on flush. No lock, no atomics — see the
	// synchronization contract above.
	buf []event.Event
}

// NewBatchWriter returns a writer publishing to the named monitor's
// shard, staging up to size events (DefaultBatchSize when size <= 0),
// and registers it for the checkpoint flush handshake
// (FlushMonitorWriters). Close the writer when its producer is done so
// the final partial block publishes and the registration is dropped.
func (db *DB) NewBatchWriter(monitor string, size int) *BatchWriter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	w := &BatchWriter{
		db:      db,
		monitor: monitor,
		buf:     make([]event.Event, 0, size),
	}
	db.writerMu.Lock()
	if db.writers == nil {
		db.writers = make(map[*BatchWriter]struct{}, 4)
	}
	db.writers[w] = struct{}{}
	db.writerMu.Unlock()
	return w
}

// Append implements monitor.Recorder: the event is staged locally and
// published (with the rest of its block) on the next flush — buffer
// full, explicit Flush/Close, or a checkpoint handshake. Unlike
// DB.Append the returned copy carries no sequence number: a staged
// event joins the global order only at publication. No caller of the
// Recorder seam reads the sequence number back (the monitor discards
// it; the real-time and external checkers key on Monitor/Proc/Pid),
// which is what makes the deferred assignment safe.
func (w *BatchWriter) Append(e event.Event) event.Event {
	if e.Monitor != w.monitor {
		return w.db.Append(e)
	}
	w.buf = append(w.buf, e)
	if len(w.buf) == cap(w.buf) {
		w.flush()
	}
	return e
}

// Flush publishes the staged block, if any. It is essentially free
// when the buffer is empty, which is why the checkpoint handshake can
// afford to flush on every checkpoint. Callers must hold the writer's
// synchronization contract (producer goroutine, or a freeze edge).
func (w *BatchWriter) Flush() { w.flush() }

func (w *BatchWriter) flush() {
	if len(w.buf) == 0 {
		return
	}
	w.db.AppendBatch(w.monitor, w.buf)
	// The backing array is reused: AppendBatch copied the events out.
	w.buf = w.buf[:0]
}

// Pending reports how many events are staged but not yet published —
// observability for tests and the example walkthrough. Subject to the
// writer's synchronization contract.
func (w *BatchWriter) Pending() int { return len(w.buf) }

// Monitor returns the monitor the writer is bound to.
func (w *BatchWriter) Monitor() string { return w.monitor }

// Close flushes the staged block and deregisters the writer from the
// checkpoint handshake. The writer must not be used after Close.
func (w *BatchWriter) Close() {
	w.flush()
	w.db.writerMu.Lock()
	delete(w.db.writers, w)
	w.db.writerMu.Unlock()
}

// FlushMonitorWriters publishes the staged block of every registered
// writer bound to one of the named monitors — the checkpoint half of
// the batching handshake. The detector calls it with exactly the
// monitors it has frozen: frozen monitors record nothing, and the
// freeze is the happens-before edge that makes reading their writers'
// buffers safe (see the BatchWriter synchronization contract), so the
// checkpoint horizon taken right after covers everything recorded
// before the freeze — exactly the serial path's guarantee. Writers of
// monitors outside the set are left untouched: their events are not
// this checkpoint's business, and their producers may be live.
func (db *DB) FlushMonitorWriters(monitors ...string) {
	db.writerMu.Lock()
	var flush []*BatchWriter
	for w := range db.writers {
		for _, m := range monitors {
			if w.monitor == m {
				flush = append(flush, w)
				break
			}
		}
	}
	db.writerMu.Unlock()
	for _, w := range flush {
		w.Flush()
	}
}

// FlushWriters publishes every registered writer's staged block. Every
// writer's producer must be quiescent (the caller has joined or frozen
// them all) — the convenience for standalone drain callers: tests and
// tools that drained the database without a detector. Detector
// checkpoints use FlushMonitorWriters with the frozen subset instead.
func (db *DB) FlushWriters() {
	db.writerMu.Lock()
	writers := make([]*BatchWriter, 0, len(db.writers))
	for w := range db.writers {
		writers = append(writers, w)
	}
	db.writerMu.Unlock()
	for _, w := range writers {
		w.Flush()
	}
}
