package history

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
)

// Tests for the batched record path: AppendBatch block publication,
// the lock-free BatchWriter, the checkpoint flush handshake and the
// segment-slab pool. The -race interleavings at the bottom are the
// satellite the ISSUE asks for: batched ingest racing Drain,
// DrainMonitorUpTo and ResetMonitor on both database layouts.

func batchOf(mon string, n int) []event.Event {
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Monitor: mon, Type: event.Enter, Pid: int64(i + 1),
			Proc: "Op", Time: time.Unix(0, int64(i)),
		}
	}
	return evs
}

func TestAppendBatchAssignsContiguousRange(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if global {
				opts = append(opts, WithGlobalLock())
			}
			db := New(opts...)
			apFor(db, "other") // seq 1: the batch must start after it
			first, last := db.AppendBatch("a", batchOf("a", 5))
			if first != 2 || last != 6 {
				t.Fatalf("AppendBatch range = [%d, %d], want [2, 6]", first, last)
			}
			seg := db.DrainMonitor("a")
			if len(seg) != 5 {
				t.Fatalf("drained %d events, want 5", len(seg))
			}
			for i, e := range seg {
				if e.Seq != first+int64(i) {
					t.Fatalf("seg[%d].Seq = %d, want %d", i, e.Seq, first+int64(i))
				}
				if e.Monitor != "a" {
					t.Fatalf("seg[%d].Monitor = %q, want a (AppendBatch stamps it)", i, e.Monitor)
				}
			}
			if got := db.EventCount("a"); got != 5 {
				t.Fatalf("EventCount(a) = %d, want 5", got)
			}
			if got := db.Total(); got != 6 {
				t.Fatalf("Total = %d, want 6", got)
			}
		})
	}
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	t.Parallel()
	db := New()
	if first, last := db.AppendBatch("a", nil); first != 0 || last != 0 {
		t.Fatalf("empty batch range = [%d, %d], want [0, 0]", first, last)
	}
	if db.Total() != 0 || db.LastSeq() != 0 {
		t.Fatalf("empty batch mutated the db: total=%d lastSeq=%d", db.Total(), db.LastSeq())
	}
}

// TestAppendBatchEquivalentToSingletons pins the semantic contract: a
// batch publication leaves the database in exactly the state N
// singleton Appends would have.
func TestAppendBatchEquivalentToSingletons(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			build := func(batched bool) *DB {
				opts := []Option{WithFullTrace()}
				if global {
					opts = append(opts, WithGlobalLock())
				}
				db := New(opts...)
				for _, mon := range []string{"a", "b"} {
					evs := batchOf(mon, 7)
					if batched {
						db.AppendBatch(mon, evs)
					} else {
						for _, e := range evs {
							db.Append(e)
						}
					}
				}
				return db
			}
			one, many := build(false), build(true)
			a, b := one.Drain(), many.Drain()
			if len(a) != len(b) {
				t.Fatalf("drain lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("event %d differs:\n singleton %+v\n batched   %+v", i, a[i], b[i])
				}
			}
			fa, fb := one.Full(), many.Full()
			if len(fa) != len(fb) {
				t.Fatalf("full traces differ in length: %d vs %d", len(fa), len(fb))
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("full-trace event %d differs", i)
				}
			}
			if one.Total() != many.Total() || one.LastSeq() != many.LastSeq() {
				t.Fatalf("counters differ: total %d/%d lastSeq %d/%d",
					one.Total(), many.Total(), one.LastSeq(), many.LastSeq())
			}
		})
	}
}

// TestAppendBatchCallerOwnsInput pins what lets BatchWriter reuse its
// staging buffer: AppendBatch copies events out, so mutating the input
// afterwards must not reach into the shard.
func TestAppendBatchCallerOwnsInput(t *testing.T) {
	t.Parallel()
	db := New()
	evs := batchOf("a", 3)
	db.AppendBatch("a", evs)
	for i := range evs {
		evs[i].Proc = "clobbered"
	}
	for i, e := range db.DrainMonitor("a") {
		if e.Proc != "Op" {
			t.Fatalf("event %d reads caller mutation %q — AppendBatch aliased its input", i, e.Proc)
		}
	}
}

func TestBatchWriterFlushesOnFullAndClose(t *testing.T) {
	t.Parallel()
	db := New()
	w := db.NewBatchWriter("a", 3)
	if w.Monitor() != "a" {
		t.Fatalf("Monitor() = %q, want a", w.Monitor())
	}
	evs := batchOf("a", 5)
	for i, e := range evs[:2] {
		w.Append(e)
		if got := w.Pending(); got != i+1 {
			t.Fatalf("Pending = %d after %d appends, want %d", got, i+1, i+1)
		}
	}
	if db.Total() != 0 {
		t.Fatalf("staged events published early: total = %d", db.Total())
	}
	w.Append(evs[2]) // third append fills the block: auto-flush
	if w.Pending() != 0 || db.Total() != 3 {
		t.Fatalf("after full block: pending=%d total=%d, want 0/3", w.Pending(), db.Total())
	}
	w.Append(evs[3])
	w.Append(evs[4])
	w.Close() // final partial block publishes
	if db.Total() != 5 {
		t.Fatalf("after Close: total = %d, want 5", db.Total())
	}
	seg := db.DrainMonitor("a")
	for i, e := range seg {
		if e.Seq != int64(i+1) {
			t.Fatalf("seg[%d].Seq = %d, want %d (blocks must stay in order)", i, e.Seq, i+1)
		}
	}
}

func TestBatchWriterMismatchedMonitorFallsBack(t *testing.T) {
	t.Parallel()
	db := New()
	w := db.NewBatchWriter("a", 8)
	defer w.Close()
	got := w.Append(event.Event{Monitor: "b", Type: event.Enter, Time: time.Unix(0, 0)})
	if got.Seq != 1 {
		t.Fatalf("mismatched-monitor append Seq = %d, want 1 (immediate singleton publish)", got.Seq)
	}
	if w.Pending() != 0 {
		t.Fatalf("mismatched event staged in the wrong writer: pending = %d", w.Pending())
	}
	if seg := db.DrainMonitor("b"); len(seg) != 1 {
		t.Fatalf("monitor b drained %d events, want 1", len(seg))
	}
}

func TestFlushMonitorWritersFlushesOnlyNamed(t *testing.T) {
	t.Parallel()
	db := New()
	wa := db.NewBatchWriter("a", 16)
	wb := db.NewBatchWriter("b", 16)
	defer wa.Close()
	defer wb.Close()
	wa.Append(batchOf("a", 1)[0])
	wb.Append(batchOf("b", 1)[0])
	db.FlushMonitorWriters("a")
	if wa.Pending() != 0 {
		t.Fatalf("writer a not flushed: pending = %d", wa.Pending())
	}
	if wb.Pending() != 1 {
		t.Fatalf("writer b flushed though unnamed: pending = %d", wb.Pending())
	}
	db.FlushWriters()
	if wb.Pending() != 0 {
		t.Fatalf("FlushWriters left writer b staged: pending = %d", wb.Pending())
	}
	if db.Total() != 2 {
		t.Fatalf("total = %d, want 2", db.Total())
	}
}

func TestClosedWriterLeavesHandshake(t *testing.T) {
	t.Parallel()
	db := New()
	w := db.NewBatchWriter("a", 4)
	w.Close()
	// A closed writer must be gone from the registry; flushing must not
	// touch it (nothing observable beyond not panicking and not
	// re-publishing).
	db.FlushMonitorWriters("a")
	db.FlushWriters()
	if db.Total() != 0 {
		t.Fatalf("closed writer republished: total = %d", db.Total())
	}
}

func TestRecycleAndSlabReuse(t *testing.T) {
	// Not parallel: the segment pool is package-global and this test
	// reasons about what it returns.
	seg, _ := newSegment(segClasses[0])
	if len(seg) != segClasses[0] || cap(seg) != segClasses[0] {
		t.Fatalf("newSegment(%d): len=%d cap=%d", segClasses[0], len(seg), cap(seg))
	}
	for i := range seg {
		seg[i] = event.Event{Monitor: "x", Proc: "p", Seq: int64(i)}
	}
	db := New()
	db.Recycle(seg)
	got, _ := slabFor(segClasses[0])
	if cap(got) < segClasses[0] {
		t.Fatalf("slabFor(%d) cap = %d", segClasses[0], cap(got))
	}
	// Whether or not the pool returned the recycled slab (sync.Pool may
	// drop it), the slab must be clean: no stale events pinned.
	full := got[:cap(got)]
	for i, e := range full {
		if e != (event.Event{}) {
			t.Fatalf("pooled slab dirty at %d: %+v", i, e)
		}
	}
}

func TestRecycleRejectsOutOfClassCaps(t *testing.T) {
	t.Parallel()
	db := New()
	// Too small and too large: both must be left to the GC, silently.
	db.Recycle(make(event.Seq, 0, segClasses[0]/2))
	db.Recycle(make(event.Seq, 0, maxRetainedCap*2))
	db.Recycle(nil)
}

func TestRecycleNormalisesOddCaps(t *testing.T) {
	t.Parallel()
	// An append-grown slab lands between classes; Recycle reslices it
	// down so the pool's class promise (a Get's capacity is exactly the
	// class) holds. classFor/slabFor agree on the boundaries.
	if i := classFor(segClasses[0]); i != 0 {
		t.Fatalf("classFor(%d) = %d, want 0", segClasses[0], i)
	}
	if i := classFor(segClasses[0] + 1); i != 1 {
		t.Fatalf("classFor(%d) = %d, want 1", segClasses[0]+1, i)
	}
	if i := classFor(maxRetainedCap + 1); i != -1 {
		t.Fatalf("classFor(max+1) = %d, want -1", i)
	}
	// A class-sized hint with a dry pool must still produce a slab (the
	// non-recycling-consumer path allocates one bounded slab per drain).
	if s, _ := slabFor(segClasses[1]); cap(s) < segClasses[1] {
		t.Fatalf("slabFor(%d) cap = %d, want >= class", segClasses[1], cap(s))
	}
	// A trickle hint below the smallest class may return nil (regrow
	// naturally) but must never return an undersized slab.
	if s, _ := slabFor(8); s != nil && cap(s) < 8 {
		t.Fatalf("slabFor(8) returned undersized cap %d", cap(s))
	}
}

func TestDrainRetainsSlabCapacityAcrossCycles(t *testing.T) {
	t.Parallel()
	// The swap-based full drain must leave the shard ready to absorb
	// the same burst again: after a class-sized drain the installed
	// replacement has class capacity, so the next burst appends without
	// regrowing from nil.
	db := New()
	burst := segClasses[0]
	for cycle := 0; cycle < 3; cycle++ {
		db.AppendBatch("a", batchOf("a", burst))
		seg := db.DrainMonitor("a")
		if len(seg) != burst {
			t.Fatalf("cycle %d drained %d, want %d", cycle, len(seg), burst)
		}
		db.Recycle(seg)
		s := db.shardFor("a")
		s.mu.Lock()
		c := cap(s.segment)
		s.mu.Unlock()
		if c < burst {
			t.Fatalf("cycle %d left shard cap %d, want >= %d (swap must install a burst-sized slab)", cycle, c, burst)
		}
	}
}

// raceInvariants drains everything left, then checks the global
// bookkeeping a batched-ingest race must preserve: every published
// event is either drained or reset-dropped, sequence numbers are
// unique, and every drained segment was seq-sorted.
type raceCollector struct {
	mu      sync.Mutex
	seen    map[int64]bool
	drained int64
	sorted  bool
}

func newRaceCollector() *raceCollector {
	return &raceCollector{seen: map[int64]bool{}, sorted: true}
}

func (c *raceCollector) add(t *testing.T, seg event.Seq) {
	c.mu.Lock()
	defer c.mu.Unlock()
	last := int64(-1)
	for _, e := range seg {
		if c.seen[e.Seq] {
			t.Errorf("duplicate seq %d drained", e.Seq)
		}
		c.seen[e.Seq] = true
		if e.Seq <= last {
			c.sorted = false
		}
		last = e.Seq
	}
	c.drained += int64(len(seg))
}

func TestBatchedIngestRacesDrainsAndResets(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if global {
				opts = append(opts, WithGlobalLock())
			}
			db := New(opts...)
			const (
				monitors  = 4
				producers = 2 // per monitor: one AppendBatch, one BatchWriter
				blocks    = 50
				blockLen  = 32
			)
			names := make([]string, monitors)
			for i := range names {
				names[i] = fmt.Sprintf("m%d", i)
			}
			col := newRaceCollector()
			var resetDropped int64
			var resetMu sync.Mutex

			var wg sync.WaitGroup
			for _, mon := range names {
				mon := mon
				// Producer 1: direct AppendBatch blocks.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < blocks; b++ {
						db.AppendBatch(mon, batchOf(mon, blockLen))
					}
				}()
				// Producer 2: a BatchWriter, flushed only by its own
				// goroutine (the single-producer contract; no freeze edge
				// exists in this test, so nothing else may touch it).
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := db.NewBatchWriter(mon, 16)
					for b := 0; b < blocks; b++ {
						for _, e := range batchOf(mon, blockLen) {
							w.Append(e)
						}
					}
					w.Close()
				}()
				// Per-monitor consumer: bounded drains racing the
				// producers, with an occasional reset thrown in.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < blocks; i++ {
						if i%10 == 9 {
							d := db.ResetMonitor(mon)
							resetMu.Lock()
							resetDropped += int64(d)
							resetMu.Unlock()
							continue
						}
						seg, _ := db.DrainMonitorUpTo(mon, db.LastSeq(), blockLen*2)
						col.add(t, seg)
						db.Recycle(seg)
					}
				}()
			}
			// A global drainer racing everything above.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < blocks; i++ {
					col.add(t, db.Drain())
				}
			}()
			wg.Wait()
			col.add(t, db.Drain())

			want := int64(monitors) * producers * blocks * blockLen
			if got := col.drained + resetDropped; got != want {
				t.Fatalf("drained %d + reset-dropped %d = %d, want %d published events accounted for",
					col.drained, resetDropped, col.drained+resetDropped, want)
			}
			if !col.sorted {
				t.Fatal("a drained segment was not seq-sorted")
			}
			if got := db.Total(); got != want {
				t.Fatalf("Total = %d, want %d", got, want)
			}
		})
	}
}

// TestCheckpointFlushRacesProducers models the detector handshake at
// the history layer: a "checkpoint" goroutine repeatedly flushes a
// quiescent writer while OTHER monitors' writers keep publishing. The
// per-monitor flush must not touch live writers (that would be the
// data race the monitor-bound design exists to prevent).
func TestCheckpointFlushRacesProducers(t *testing.T) {
	t.Parallel()
	db := New()
	const blocks = 200
	var wg sync.WaitGroup
	// Live producer on monitor b, never flushed externally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := db.NewBatchWriter("b", 8)
		for i := 0; i < blocks; i++ {
			for _, e := range batchOf("b", 4) {
				w.Append(e)
			}
		}
		w.Close()
	}()
	// Checkpoint loop flushing only monitor a's writers — none exist,
	// so this exercises the registry scan racing register/deregister
	// and must never reach writer b's buffer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < blocks; i++ {
			db.FlushMonitorWriters("a")
		}
	}()
	wg.Wait()
	if got := db.Total(); got != blocks*4 {
		t.Fatalf("Total = %d, want %d", got, blocks*4)
	}
}
