package history

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
)

func mev(monitor string, pid int64) event.Event {
	return event.Event{
		Monitor: monitor,
		Type:    event.Enter,
		Pid:     pid,
		Proc:    "P",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestShardPerMonitor(t *testing.T) {
	t.Parallel()
	db := New()
	for _, m := range []string{"a", "b", "c", "a"} {
		db.Append(mev(m, 1))
	}
	if got := db.Shards(); got != 3 {
		t.Fatalf("Shards = %d, want 3 (one per monitor)", got)
	}

	global := New(WithGlobalLock())
	for _, m := range []string{"a", "b", "c"} {
		global.Append(mev(m, 1))
	}
	if got := global.Shards(); got != 1 {
		t.Fatalf("Shards = %d under WithGlobalLock, want 1", got)
	}
}

func TestDrainMergesGlobalOrder(t *testing.T) {
	t.Parallel()
	db := New()
	// Interleave three monitors; the drain must restore the global
	// append order by sequence number.
	mons := []string{"a", "b", "c"}
	for i := 0; i < 30; i++ {
		db.Append(mev(mons[i%3], int64(i+1)))
	}
	seg := db.Drain()
	if len(seg) != 30 {
		t.Fatalf("Drain returned %d events, want 30", len(seg))
	}
	if err := seg.Validate(); err != nil {
		t.Fatalf("merged segment out of order: %v", err)
	}
	for i, e := range seg {
		if e.Seq != int64(i+1) {
			t.Fatalf("seg[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestDrainMonitorTouchesOnlyOwnShard(t *testing.T) {
	t.Parallel()
	db := New()
	db.Append(mev("a", 1))
	db.Append(mev("b", 2))
	db.Append(mev("a", 3))

	seg := db.DrainMonitor("a")
	if len(seg) != 2 || seg[0].Monitor != "a" || seg[1].Monitor != "a" {
		t.Fatalf("DrainMonitor(a) = %v, want the two a events", seg)
	}
	if db.SegmentLen() != 1 {
		t.Fatalf("SegmentLen after per-monitor drain = %d, want 1 (b retained)", db.SegmentLen())
	}
	rest := db.Drain()
	if len(rest) != 1 || rest[0].Monitor != "b" {
		t.Fatalf("remaining segment = %v, want only b", rest)
	}
}

func TestDrainMonitorUnderGlobalLock(t *testing.T) {
	t.Parallel()
	db := New(WithGlobalLock())
	db.Append(mev("a", 1))
	db.Append(mev("b", 2))
	db.Append(mev("a", 3))

	seg := db.DrainMonitor("a")
	if len(seg) != 2 {
		t.Fatalf("DrainMonitor(a) = %v, want 2 events", seg)
	}
	rest := db.Drain()
	if len(rest) != 1 || rest[0].Monitor != "b" {
		t.Fatalf("remaining segment = %v, want only b", rest)
	}
}

// TestExportParityShardedVsGlobal feeds the same deterministic event
// stream to a sharded and a global-lock database and requires
// byte-identical exports: sharding must not change the recorded trace.
func TestExportParityShardedVsGlobal(t *testing.T) {
	t.Parallel()
	sharded := New(WithFullTrace())
	global := New(WithFullTrace(), WithGlobalLock())
	mons := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 200; i++ {
		e := mev(mons[i%len(mons)], int64(i%7+1))
		sharded.Append(e)
		global.Append(e)
	}
	var sj, gj, sb, gb bytes.Buffer
	if err := sharded.ExportJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := global.ExportJSON(&gj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), gj.Bytes()) {
		t.Fatal("sharded and global-lock JSON exports differ")
	}
	if err := sharded.ExportBinary(&sb); err != nil {
		t.Fatal(err)
	}
	if err := global.ExportBinary(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), gb.Bytes()) {
		t.Fatal("sharded and global-lock binary exports differ")
	}
}

// TestConcurrentMultiMonitorAppends hammers one database from many
// goroutines, each writing its own monitor, with concurrent Peeks and
// Drains — the -race workout for the shard map and atomic counter.
func TestConcurrentMultiMonitorAppends(t *testing.T) {
	t.Parallel()
	db := New(WithFullTrace())
	const monitors, perMonitor = 8, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var drainMu sync.Mutex
	var drained event.Seq
	wg.Add(1)
	go func() { // concurrent checkpoint-ish reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.Peek()
				// A mid-run Full must be a consistent prefix of the run:
				// contiguous sequence numbers with nothing missing.
				full := db.Full()
				for i, e := range full {
					if e.Seq != int64(i+1) {
						t.Errorf("mid-run Full torn: position %d has seq %d", i, e.Seq)
						return
					}
				}
				drainMu.Lock()
				drained = append(drained, db.Drain()...)
				drainMu.Unlock()
			}
		}
	}()
	for m := 0; m < monitors; m++ {
		name := fmt.Sprintf("mon%d", m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perMonitor; i++ {
				db.Append(mev(name, int64(i+1)))
			}
		}()
	}
	for db.Total() < monitors*perMonitor {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	drained = append(drained, db.Drain()...)

	if db.Total() != monitors*perMonitor {
		t.Fatalf("Total = %d, want %d", db.Total(), monitors*perMonitor)
	}
	if len(drained) != monitors*perMonitor {
		t.Fatalf("drained %d events in total, want %d", len(drained), monitors*perMonitor)
	}
	seen := make(map[int64]bool, len(drained))
	for _, e := range drained {
		if e.Seq < 1 || e.Seq > int64(monitors*perMonitor) || seen[e.Seq] {
			t.Fatalf("bad or duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	// The full trace is the merged, seq-ordered union of all shards.
	full := db.Full()
	if err := full.Validate(); err != nil {
		t.Fatalf("full trace invalid: %v", err)
	}
	if len(full) != monitors*perMonitor {
		t.Fatalf("full trace has %d events, want %d", len(full), monitors*perMonitor)
	}
}

// teeRecorder collects drain-tee observations.
type teeRecorder struct {
	mu    sync.Mutex
	pairs []struct {
		monitor string
		seg     event.Seq
	}
}

func (r *teeRecorder) tee(monitor string, seg event.Seq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pairs = append(r.pairs, struct {
		monitor string
		seg     event.Seq
	}{monitor, seg})
}

func TestDrainTeeObservesPerMonitorSegments(t *testing.T) {
	t.Parallel()
	rec := &teeRecorder{}
	db := New(WithDrainTee(rec.tee))
	for _, m := range []string{"a", "b", "a", "c"} {
		db.Append(mev(m, 1))
	}
	drained := db.Drain()
	if len(drained) != 4 {
		t.Fatalf("Drain returned %d events, want 4", len(drained))
	}
	if len(rec.pairs) != 3 {
		t.Fatalf("tee observed %d segments, want 3 (one per monitor)", len(rec.pairs))
	}
	total := 0
	for _, p := range rec.pairs {
		total += len(p.seg)
		for _, e := range p.seg {
			if e.Monitor != p.monitor {
				t.Fatalf("tee segment for %q contains event of %q", p.monitor, e.Monitor)
			}
		}
	}
	if total != 4 {
		t.Fatalf("tee observed %d events in total, want 4", total)
	}
	// A drain with nothing buffered must not call the tee.
	db.Drain()
	if len(rec.pairs) != 3 {
		t.Fatalf("empty Drain fed the tee (now %d segments)", len(rec.pairs))
	}
}

func TestDrainMonitorFeedsTee(t *testing.T) {
	t.Parallel()
	rec := &teeRecorder{}
	db := New()
	db.SetDrainTee(rec.tee)
	db.Append(mev("a", 1))
	db.Append(mev("b", 2))
	if got := db.DrainMonitor("a"); len(got) != 1 {
		t.Fatalf("DrainMonitor(a) = %d events, want 1", len(got))
	}
	if len(rec.pairs) != 1 || rec.pairs[0].monitor != "a" || len(rec.pairs[0].seg) != 1 {
		t.Fatalf("tee observed %+v, want one single-event segment for a", rec.pairs)
	}
	// Removing the tee stops observations.
	db.SetDrainTee(nil)
	db.DrainMonitor("b")
	if len(rec.pairs) != 1 {
		t.Fatalf("tee called after removal (now %d segments)", len(rec.pairs))
	}
}

func TestDrainTeeSplitsGlobalLockSegments(t *testing.T) {
	t.Parallel()
	rec := &teeRecorder{}
	db := New(WithGlobalLock(), WithDrainTee(rec.tee))
	for _, m := range []string{"a", "b", "a"} {
		db.Append(mev(m, 1))
	}
	db.Drain()
	if len(rec.pairs) != 2 {
		t.Fatalf("tee observed %d segments under WithGlobalLock, want 2 (split per monitor)", len(rec.pairs))
	}
	for _, p := range rec.pairs {
		for _, e := range p.seg {
			if e.Monitor != p.monitor {
				t.Fatalf("tee segment for %q contains event of %q", p.monitor, e.Monitor)
			}
		}
	}
	db.Append(mev("a", 1))
	db.Append(mev("b", 1))
	if got := db.DrainMonitor("a"); len(got) != 1 {
		t.Fatalf("DrainMonitor(a) = %d events, want 1", len(got))
	}
	if last := rec.pairs[len(rec.pairs)-1]; last.monitor != "a" || len(last.seg) != 1 {
		t.Fatalf("tee observed %+v for global-lock DrainMonitor, want a's single event", last)
	}
}

func TestAddDrainTeeIsAdditive(t *testing.T) {
	t.Parallel()
	a, b := &teeRecorder{}, &teeRecorder{}
	db := New()
	db.AddDrainTee(a.tee)
	db.AddDrainTee(b.tee) // must not unwire a — both observe everything
	db.Append(mev("m", 1))
	db.DrainMonitor("m")
	db.Append(mev("m", 2))
	db.Drain()
	if len(a.pairs) != 2 || len(b.pairs) != 2 {
		t.Fatalf("tees observed %d and %d segments, want 2 and 2", len(a.pairs), len(b.pairs))
	}
	// SetDrainTee replaces every installed tee.
	c := &teeRecorder{}
	db.SetDrainTee(c.tee)
	db.Append(mev("m", 3))
	db.Drain()
	if len(a.pairs) != 2 || len(b.pairs) != 2 || len(c.pairs) != 1 {
		t.Fatalf("after SetDrainTee: observed %d/%d/%d segments, want 2/2/1", len(a.pairs), len(b.pairs), len(c.pairs))
	}
}
