package history

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
	"robustmon/internal/state"
)

func ev(pid int64) event.Event {
	return event.Event{
		Monitor: "m",
		Type:    event.Enter,
		Pid:     pid,
		Proc:    "P",
		Flag:    event.Completed,
		Time:    time.Date(2001, 7, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestAppendAssignsSequentialSeq(t *testing.T) {
	t.Parallel()
	db := New()
	for i := int64(1); i <= 5; i++ {
		got := db.Append(ev(i))
		if got.Seq != i {
			t.Fatalf("Append #%d assigned seq %d", i, got.Seq)
		}
	}
	if db.LastSeq() != 5 || db.Total() != 5 || db.SegmentLen() != 5 {
		t.Fatalf("LastSeq=%d Total=%d SegmentLen=%d, want 5,5,5",
			db.LastSeq(), db.Total(), db.SegmentLen())
	}
}

func TestDrainResetsSegmentNotSeq(t *testing.T) {
	t.Parallel()
	db := New()
	db.Append(ev(1))
	db.Append(ev(2))
	seg := db.Drain()
	if len(seg) != 2 {
		t.Fatalf("Drain returned %d events, want 2", len(seg))
	}
	if db.SegmentLen() != 0 {
		t.Fatalf("SegmentLen after drain = %d, want 0", db.SegmentLen())
	}
	e := db.Append(ev(3))
	if e.Seq != 3 {
		t.Fatalf("seq after drain = %d, want 3 (numbering must continue)", e.Seq)
	}
	seg2 := db.Drain()
	if len(seg2) != 1 || seg2[0].Seq != 3 {
		t.Fatalf("second Drain = %v", seg2)
	}
}

func TestPeekDoesNotDrain(t *testing.T) {
	t.Parallel()
	db := New()
	db.Append(ev(1))
	p1 := db.Peek()
	p2 := db.Peek()
	if len(p1) != 1 || len(p2) != 1 || db.SegmentLen() != 1 {
		t.Fatal("Peek consumed the segment")
	}
	p1[0].Pid = 99 // must not alias internal storage
	if db.Peek()[0].Pid == 99 {
		t.Fatal("Peek aliases the internal segment")
	}
}

func TestFullTraceRetention(t *testing.T) {
	t.Parallel()
	db := New(WithFullTrace())
	if !db.KeepsFull() {
		t.Fatal("KeepsFull = false with WithFullTrace")
	}
	db.Append(ev(1))
	db.Drain()
	db.Append(ev(2))
	full := db.Full()
	if len(full) != 2 || full[0].Seq != 1 || full[1].Seq != 2 {
		t.Fatalf("Full = %v, want both events despite drain", full)
	}
}

func TestFullIsNilWithoutOption(t *testing.T) {
	t.Parallel()
	db := New()
	db.Append(ev(1))
	if db.Full() != nil {
		t.Fatal("Full returned data without WithFullTrace")
	}
	if db.KeepsFull() {
		t.Fatal("KeepsFull = true without option")
	}
}

func TestExportRoundTrip(t *testing.T) {
	t.Parallel()
	db := New(WithFullTrace())
	for i := int64(1); i <= 4; i++ {
		db.Append(ev(i))
	}
	var jb, bb bytes.Buffer
	if err := db.ExportJSON(&jb); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	if err := db.ExportBinary(&bb); err != nil {
		t.Fatalf("ExportBinary: %v", err)
	}
	js, err := event.ReadJSON(&jb)
	if err != nil || len(js) != 4 {
		t.Fatalf("ReadJSON = %d events, err %v", len(js), err)
	}
	bs, err := event.ReadBinary(&bb)
	if err != nil || len(bs) != 4 {
		t.Fatalf("ReadBinary = %d events, err %v", len(bs), err)
	}
}

func TestStateRetentionRequiresFullTrace(t *testing.T) {
	t.Parallel()
	snap := state.Snapshot{Monitor: "m", Resources: 3}

	slim := New()
	slim.AppendState(snap)
	if slim.States() != nil {
		t.Fatal("slim DB retained checkpoint states")
	}
	if _, ok := slim.LastState("m"); ok {
		t.Fatal("slim DB returned a last state")
	}

	full := New(WithFullTrace())
	full.AppendState(snap)
	snap2 := snap
	snap2.Resources = 1
	full.AppendState(snap2)
	full.AppendState(state.Snapshot{Monitor: "other"})
	states := full.States()
	if len(states) != 3 {
		t.Fatalf("States = %d, want 3", len(states))
	}
	last, ok := full.LastState("m")
	if !ok || last.Resources != 1 {
		t.Fatalf("LastState = %+v,%v, want the second m snapshot", last, ok)
	}
	if _, ok := full.LastState("ghost"); ok {
		t.Fatal("LastState for unknown monitor reported ok")
	}
	// Returned snapshots must not alias internal storage.
	states[0].Resources = 99
	if again := full.States(); again[0].Resources == 99 {
		t.Fatal("States aliases internal storage")
	}
}

func TestConcurrentAppendsGetUniqueSeqs(t *testing.T) {
	t.Parallel()
	db := New()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	seqs := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e := db.Append(ev(int64(w + 1)))
				seqs[w] = append(seqs[w], e.Seq)
			}
		}()
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*each)
	for _, ws := range seqs {
		prev := int64(0)
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("duplicate sequence number %d", s)
			}
			seen[s] = true
			if s <= prev {
				t.Fatalf("per-worker seqs not increasing: %d after %d", s, prev)
			}
			prev = s
		}
	}
	if db.Total() != workers*each {
		t.Fatalf("Total = %d, want %d", db.Total(), workers*each)
	}
	if err := db.Drain().Validate(); err != nil {
		t.Fatalf("drained segment invalid: %v", err)
	}
}
