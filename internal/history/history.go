// Package history is the history-information database of §3/§4.
//
// Data-gathering routines (the instrumented monitor primitives) append
// scheduling events in real time; the checking routine drains the
// segment of events recorded since the previous checkpoint and replays
// it against the checking lists. Following §3.3 — "only a small amount
// of information needs to be kept … most of the information can be
// removed after being used" — a drained segment is discarded unless the
// database was configured to keep the full trace (useful for offline
// FD-rule checking, export, and the T=1 accuracy mode).
package history

import (
	"io"
	"sync"

	"robustmon/internal/event"
	"robustmon/internal/state"
)

// DB is a concurrent, append-only event store with checkpoint draining.
// Construct with New.
type DB struct {
	mu       sync.Mutex
	nextSeq  int64
	segment  []event.Event
	full     event.Seq
	keepFull bool
	total    int64
	states   []state.Snapshot
}

// Option configures a DB.
type Option func(*DB)

// WithFullTrace keeps every event ever recorded (in addition to the
// per-checkpoint segment) so the run can be exported or re-checked
// offline. Without it the database holds only the current segment, as
// in the paper's space-efficient strategy.
func WithFullTrace() Option {
	return func(db *DB) { db.keepFull = true }
}

// New returns an empty database.
func New(opts ...Option) *DB {
	db := &DB{}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Append records the event, assigns it the next sequence number
// (starting at 1), and returns the stored copy.
func (db *DB) Append(e event.Event) event.Event {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextSeq++
	e.Seq = db.nextSeq
	db.segment = append(db.segment, e)
	if db.keepFull {
		db.full = append(db.full, e)
	}
	db.total++
	return e
}

// Drain returns the events recorded since the previous Drain (the
// checking segment L = l1…ln of Algorithm 1–3) and resets the segment.
func (db *DB) Drain() event.Seq {
	db.mu.Lock()
	defer db.mu.Unlock()
	seg := event.Seq(db.segment)
	db.segment = nil
	return seg
}

// Peek returns a copy of the current segment without draining it.
func (db *DB) Peek() event.Seq {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append(event.Seq(nil), db.segment...)
}

// LastSeq returns the sequence number of the most recently recorded
// event (0 when nothing was recorded yet).
func (db *DB) LastSeq() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.nextSeq
}

// Total returns the number of events ever recorded.
func (db *DB) Total() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.total
}

// SegmentLen returns the number of events in the current segment.
func (db *DB) SegmentLen() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.segment)
}

// Full returns a copy of the complete trace. It returns nil unless the
// database was built with WithFullTrace.
func (db *DB) Full() event.Seq {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.keepFull {
		return nil
	}
	return append(event.Seq(nil), db.full...)
}

// KeepsFull reports whether the database retains the complete trace.
func (db *DB) KeepsFull() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.keepFull
}

// AppendState records a checkpoint snapshot — §4's database "consists
// of the scheduling event sequence recorded during monitor operation
// AND the checking lists generated at the checking points". The
// detector records each monitor's frozen snapshot here so offline
// tooling can reconstruct the exact checkpoint boundaries.
//
// Snapshots are only retained when the database keeps the full trace;
// in the space-efficient configuration they are discarded like drained
// segments.
func (db *DB) AppendState(snap state.Snapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.keepFull {
		return
	}
	db.states = append(db.states, snap.Clone())
}

// States returns the recorded checkpoint snapshots in order (nil
// without WithFullTrace).
func (db *DB) States() []state.Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]state.Snapshot, 0, len(db.states))
	for _, s := range db.states {
		out = append(out, s.Clone())
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// LastState returns the most recent checkpoint snapshot for the named
// monitor, if one was recorded.
func (db *DB) LastState(monitorName string) (state.Snapshot, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := len(db.states) - 1; i >= 0; i-- {
		if db.states[i].Monitor == monitorName {
			return db.states[i].Clone(), true
		}
	}
	return state.Snapshot{}, false
}

// ExportJSON writes the full trace as JSON Lines. It requires
// WithFullTrace.
func (db *DB) ExportJSON(w io.Writer) error {
	return event.WriteJSON(w, db.Full())
}

// ExportBinary writes the full trace in the binary format. It requires
// WithFullTrace.
func (db *DB) ExportBinary(w io.Writer) error {
	return event.WriteBinary(w, db.Full())
}
