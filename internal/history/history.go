// Package history is the history-information database of §3/§4.
//
// Data-gathering routines (the instrumented monitor primitives) append
// scheduling events in real time; the checking routine drains the
// segment of events recorded since the previous checkpoint and replays
// it against the checking lists. Following §3.3 — "only a small amount
// of information needs to be kept … most of the information can be
// removed after being used" — a drained segment is discarded unless the
// database was configured to keep the full trace (useful for offline
// FD-rule checking, export, and the T=1 accuracy mode).
//
// # Sharding
//
// The database is sharded per monitor: each monitor's events land in a
// shard with its own lock and segment buffer, so monitors that run
// concurrently never contend on a database-wide mutex. Global event
// order — the paper's <L relation — is preserved by an atomic sequence
// counter: every Append claims the next global sequence number while
// holding only its shard's lock, so each shard's segment is internally
// seq-sorted and the global sequence is recovered by merging shards
// (event.Merge) on Drain, Full and the exports. The merged trace is
// byte-identical to what a single global database would have recorded.
// DrainMonitor lets the detector's parallel checkpoint pipeline drain
// one monitor's shard without touching any other — which also means
// detectors only consume the shards of monitors they were given, so
// several detectors can share one database without stealing each
// other's segments. The flip side: a monitor wired to a database but
// covered by no detector (and never drained) buffers its events
// indefinitely; give every recording monitor a detector, or drain its
// shard yourself.
//
// WithGlobalLock collapses the database to a single shard guarded by
// one mutex — the pre-sharding contention profile, kept for the
// comparative benchmarks (BenchmarkHistoryGlobal vs
// BenchmarkHistorySharded).
//
// # Batched publication
//
// Append pays one shard-lock acquire and three atomic updates per
// event. AppendBatch publishes a block under a single acquire with one
// contiguous sequence-range claim, and BatchWriter (see batch.go)
// stages events per producer so blocks form without shared state; the
// checkpoint flush handshake (FlushWriters) keeps drains and
// checkpoints exactly as consistent as the singleton path.
package history

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"robustmon/internal/event"
	"robustmon/internal/state"
)

// shard holds one monitor's slice of the database. Its segment (and
// full trace, when retained) is sorted by global sequence number,
// because Append claims the sequence number under the shard lock.
type shard struct {
	mu      sync.Mutex
	segment []event.Event
	full    event.Seq
	// counter is the owning monitor's cumulative event counter,
	// resolved once at shard creation so Append never touches the
	// counter map. Nil for the WithGlobalLock shared shard, whose
	// events span monitors — that mode looks counters up per append
	// (it is the legacy contention profile anyway).
	counter *counter
	// met points at the owning DB's obs handles (never nil; the
	// handles inside are nil without WithObs), so the drain path can
	// count pool traffic without reaching back to the DB.
	met *histMetrics
}

// counter is one monitor's cumulative event count. It lives outside
// the shard so that rate estimators (the adaptive checkpoint
// scheduler) can read it lock-free while appends and drains are in
// flight — and so per-monitor counts survive WithGlobalLock, which
// collapses the shards but not the counters.
type counter struct{ n atomic.Int64 }

// DrainTee observes drained segments. The database calls each
// installed tee once per (monitor, segment) pair for every Drain and
// DrainMonitor, after the shard locks are released; the events slice
// is shared read-only with the drain caller (and any other tees) and
// must not be mutated. internal/export.Exporter satisfies this
// signature, which is how checkpoints feed the async trace-export
// pipeline for free.
type DrainTee func(monitor string, seg event.Seq)

// DB is a concurrent, append-only event store with checkpoint draining,
// sharded per monitor. Construct with New.
type DB struct {
	nextSeq  atomic.Int64
	total    atomic.Int64
	keepFull bool
	global   bool // WithGlobalLock: single shard, legacy contention profile

	// tees observe every drained segment (see DrainTee). Guarded by
	// teeMu so SetDrainTee/AddDrainTee can race drains safely.
	teeMu sync.RWMutex
	tees  []DrainTee

	// shardMu guards the shards map itself (shard creation); appends on
	// an existing shard take only the shard's own lock.
	shardMu sync.RWMutex
	shards  map[string]*shard

	// countMu guards the counters map itself; the counts are atomics so
	// readers (EventCount) never take a lock on the hot path.
	countMu sync.RWMutex
	counts  map[string]*counter

	// writerMu guards the registry of live BatchWriters — the set the
	// checkpoint flush handshake (FlushWriters) publishes. Writers
	// register in NewBatchWriter and leave in Close; the registry is
	// touched at construction, close and checkpoint rhythm, never per
	// event.
	writerMu sync.Mutex
	writers  map[*BatchWriter]struct{}

	// stateMu guards the checkpoint snapshots — a cold path written only
	// at checkpoints, deliberately outside the shard locks.
	stateMu sync.Mutex
	states  []state.Snapshot

	// met are the obs handles (see obs.go); zero value = disabled.
	met histMetrics
}

// Option configures a DB.
type Option func(*DB)

// WithFullTrace keeps every event ever recorded (in addition to the
// per-checkpoint segment) so the run can be exported or re-checked
// offline. Without it the database holds only the current segment, as
// in the paper's space-efficient strategy.
func WithFullTrace() Option {
	return func(db *DB) { db.keepFull = true }
}

// WithGlobalLock routes every monitor through a single shard, restoring
// the pre-sharding single-mutex behaviour. It exists so benchmarks can
// measure what the sharding buys; production callers should not use it.
func WithGlobalLock() Option {
	return func(db *DB) { db.global = true }
}

// WithDrainTee adds a drain tee at construction time (see
// AddDrainTee).
func WithDrainTee(tee DrainTee) Option {
	return func(db *DB) { db.tees = append(db.tees, tee) }
}

// New returns an empty database (sharded per monitor by default).
func New(opts ...Option) *DB {
	db := &DB{
		shards: make(map[string]*shard, 8),
		counts: make(map[string]*counter, 8),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// shardFor returns the shard receiving events of the named monitor,
// creating it on first use.
func (db *DB) shardFor(monitor string) *shard {
	if db.global {
		monitor = ""
	}
	db.shardMu.RLock()
	s := db.shards[monitor]
	db.shardMu.RUnlock()
	if s != nil {
		return s
	}
	db.shardMu.Lock()
	defer db.shardMu.Unlock()
	if s = db.shards[monitor]; s == nil {
		s = &shard{met: &db.met}
		if !db.global {
			s.counter = db.counterFor(monitor)
		}
		db.shards[monitor] = s
	}
	return s
}

// counterFor returns the named monitor's cumulative event counter,
// creating it on first use. Unlike shardFor it never aliases monitors
// together under WithGlobalLock: counts stay per monitor.
func (db *DB) counterFor(monitor string) *counter {
	db.countMu.RLock()
	c := db.counts[monitor]
	db.countMu.RUnlock()
	if c != nil {
		return c
	}
	db.countMu.Lock()
	defer db.countMu.Unlock()
	if c = db.counts[monitor]; c == nil {
		c = &counter{}
		db.counts[monitor] = c
	}
	return c
}

// EventCount returns how many events the named monitor has recorded
// over the database's lifetime (drains do not decrement it). It is a
// single atomic load after the first call for a monitor, so rate
// estimators — the adaptive checkpoint scheduler samples every
// monitor's counter on each tick — can poll it while appends, drains
// and hold-world barriers are in flight.
func (db *DB) EventCount(monitor string) int64 {
	return db.counterFor(monitor).n.Load()
}

// lockAllShards locks every shard in deterministic (name) order and
// returns them (with their monitor names, index-aligned) and an
// unlock function. The shard-map read lock is held until unlock, so
// no new shard can appear mid-operation, and with every shard lock
// held no Append can be mid-flight: the recorded events are exactly
// sequence numbers 1..nextSeq. Multi-shard operations therefore
// observe one consistent global state even without freezing the
// monitors. The deterministic order makes concurrent multi-shard
// operations deadlock-free (single-shard paths hold at most one shard
// lock and never a shard lock under shardMu).
func (db *DB) lockAllShards() ([]string, []*shard, func()) {
	db.shardMu.RLock()
	names := make([]string, 0, len(db.shards))
	for name := range db.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	shards := make([]*shard, 0, len(names))
	for _, name := range names {
		shards = append(shards, db.shards[name])
	}
	for _, s := range shards {
		s.mu.Lock()
	}
	return names, shards, func() {
		for _, s := range shards {
			s.mu.Unlock()
		}
		db.shardMu.RUnlock()
	}
}

// AddDrainTee adds a tee observing every segment drained from now on
// — by any Drain or DrainMonitor caller, so several detectors sharing
// the database each see the whole stream, not just their own drains.
// Tees run on the draining goroutine after the shard locks are
// released — a slow tee delays the drainer but never blocks
// concurrent Appends; hand it an export.Exporter (whose Consume
// signature matches) to move even that cost off the drain path.
func (db *DB) AddDrainTee(tee DrainTee) {
	db.teeMu.Lock()
	db.tees = append(db.tees, tee)
	db.teeMu.Unlock()
}

// SetDrainTee replaces every installed tee with the given one (or,
// with nil, removes them all). Prefer AddDrainTee: replacing silently
// unwires any exporter another component installed.
func (db *DB) SetDrainTee(tee DrainTee) {
	db.teeMu.Lock()
	if tee == nil {
		db.tees = nil
	} else {
		db.tees = []DrainTee{tee}
	}
	db.teeMu.Unlock()
}

// drainTees snapshots the installed tees (nil when none).
func (db *DB) drainTees() []DrainTee {
	db.teeMu.RLock()
	defer db.teeMu.RUnlock()
	if len(db.tees) == 0 {
		return nil
	}
	return append([]DrainTee(nil), db.tees...)
}

// teePair is one (monitor, drained segment) observation for the tee.
type teePair struct {
	monitor string
	seg     event.Seq
}

// splitByMonitor splits a mixed-monitor segment (the WithGlobalLock
// single shard) into per-monitor subsequences, preserving seq order
// within each.
func splitByMonitor(seg event.Seq) []teePair {
	byMon := make(map[string]event.Seq, 4)
	var order []string
	for _, e := range seg {
		if _, ok := byMon[e.Monitor]; !ok {
			order = append(order, e.Monitor)
		}
		byMon[e.Monitor] = append(byMon[e.Monitor], e)
	}
	pairs := make([]teePair, 0, len(order))
	for _, m := range order {
		pairs = append(pairs, teePair{monitor: m, seg: byMon[m]})
	}
	return pairs
}

// Append records the event, assigns it the next global sequence number
// (starting at 1), and returns the stored copy. Appends to different
// monitors contend only on the atomic counter, never on a common lock.
// For block publication amortising the lock and the sequence claim,
// see AppendBatch and BatchWriter (batch.go).
//
// This is the hottest function in the repository: the counter lookup
// is resolved before the lock (the shard caches its monitor's counter;
// only the WithGlobalLock shared shard pays a map lookup, outside the
// critical section), the unlock is explicit rather than deferred, and
// the atomic counter updates happen after the lock is released — the
// critical section is exactly the sequence claim and the two slice
// appends.
func (db *DB) Append(e event.Event) event.Event {
	s := db.shardFor(e.Monitor)
	c := s.counter
	if c == nil { // WithGlobalLock: shared shard, per-monitor counters
		c = db.counterFor(e.Monitor)
	}
	s.mu.Lock()
	// Claimed under the shard lock, so the shard's segment stays sorted
	// by global sequence number.
	e.Seq = db.nextSeq.Add(1)
	s.segment = append(s.segment, e)
	if db.keepFull {
		s.full = append(s.full, e)
	}
	s.mu.Unlock()
	db.total.Add(1)
	c.n.Add(1)
	db.met.appends.Inc()
	return e
}

// Drain returns the events recorded since the previous Drain (the
// checking segment L = l1…ln of Algorithm 1–3), merged across shards
// into global sequence order, and resets every shard's segment. It
// holds every shard lock for the duration, so even without freezing
// the monitors the drained segment is a consistent prefix of the
// global sequence: it contains every recorded event up to its highest
// sequence number. The drained per-monitor segments are fed to the
// drain tee (if one is installed) after the locks are released.
func (db *DB) Drain() event.Seq {
	tees := db.drainTees()
	names, shards, unlock := db.lockAllShards()
	segs := make([]event.Seq, 0, len(shards))
	var pairs []teePair
	for i, s := range shards {
		if len(s.segment) == 0 {
			continue
		}
		seg := s.drainSegmentLocked(len(s.segment))
		segs = append(segs, seg)
		if tees != nil {
			if db.global {
				pairs = append(pairs, splitByMonitor(seg)...)
			} else {
				pairs = append(pairs, teePair{monitor: names[i], seg: seg})
			}
		}
	}
	unlock()
	for _, tee := range tees {
		for _, p := range pairs {
			tee(p.monitor, p.seg)
		}
	}
	if len(segs) == 1 {
		return segs[0] // ownership transferred; skip Merge's copy
	}
	return event.Merge(segs...)
}

// DrainMonitor returns and resets only the named monitor's segment —
// the per-monitor checkpoint path: the detector freezes one monitor,
// drains its shard, and replays it without stopping any other monitor.
// With WithGlobalLock the single shared shard holds every monitor's
// events, so DrainMonitor filters the named monitor's events out of it
// and keeps the rest queued. The drained segment is fed to the drain
// tee (if one is installed) after the shard lock is released.
func (db *DB) DrainMonitor(monitor string) event.Seq {
	s := db.shardFor(monitor)
	var seg event.Seq
	if db.global {
		s.mu.Lock()
		var mine, rest []event.Event
		for _, e := range s.segment {
			if e.Monitor == monitor {
				mine = append(mine, e)
			} else {
				rest = append(rest, e)
			}
		}
		s.segment = rest
		s.mu.Unlock()
		seg = mine
	} else {
		s.mu.Lock()
		seg = s.drainSegmentLocked(len(s.segment))
		s.mu.Unlock()
	}
	if len(seg) > 0 {
		for _, tee := range db.drainTees() {
			tee(monitor, seg)
		}
	}
	return seg
}

// DrainMonitorUpTo drains at most max events (max <= 0 means no bound)
// of the named monitor's segment, restricted to sequence numbers ≤
// upTo, and reports whether more such events remain buffered. It is
// the batched-checkpoint drain: the detector freezes a monitor only
// long enough to fix the checkpoint horizon upTo, thaws it, and then
// pulls the segment in bounded batches while the monitor keeps
// running — events recorded after the freeze have sequence numbers >
// upTo and stay buffered for the next checkpoint, so the drained
// prefix is exactly what a single DrainMonitor at the freeze instant
// would have returned. Each batch is fed to the drain tees after the
// shard lock is released, like every other drain path.
//
// Under WithGlobalLock the shared shard interleaves monitors and has
// no per-monitor prefix to cut cheaply: honouring max there would
// rescan (and reallocate) the whole remaining segment once per batch
// — O(S²/B) under the single mutex, the opposite of what batching is
// for. The legacy mode therefore drains the monitor's whole eligible
// set in one O(S) filter pass and ignores max; callers receive it as
// a single batch.
func (db *DB) DrainMonitorUpTo(monitor string, upTo int64, max int) (event.Seq, bool) {
	s := db.shardFor(monitor)
	var seg event.Seq
	var more bool
	s.mu.Lock()
	if db.global {
		var mine, rest []event.Event
		for _, e := range s.segment {
			if e.Monitor == monitor && e.Seq <= upTo {
				mine = append(mine, e)
			} else {
				rest = append(rest, e)
			}
		}
		s.segment = rest
		seg = mine
	} else {
		// The shard is seq-sorted, so the events ≤ upTo are a prefix.
		k := sort.Search(len(s.segment), func(i int) bool {
			return s.segment[i].Seq > upTo
		})
		n := k
		if max > 0 && n > max {
			n = max
		}
		// The drained prefix is copied out (see drainSegmentLocked), so
		// the returned slice is exclusively the consumers' — nothing can
		// scribble over the events left buffered, and the shard's slab
		// is retained instead of regrowing from nil every checkpoint.
		seg = s.drainSegmentLocked(n)
		more = k > n
	}
	s.mu.Unlock()
	if len(seg) > 0 {
		for _, tee := range db.drainTees() {
			tee(monitor, seg)
		}
	}
	return seg, more
}

// Peek returns a copy of the current segment, merged across shards,
// without draining it. Like Drain it holds every shard lock, so the
// result is a consistent view of the buffered events.
func (db *DB) Peek() event.Seq {
	_, shards, unlock := db.lockAllShards()
	defer unlock()
	segs := make([]event.Seq, 0, len(shards))
	for _, s := range shards {
		if len(s.segment) > 0 {
			// Merge never aliases its inputs into its output, so the live
			// segments can be read directly under the held locks.
			segs = append(segs, event.Seq(s.segment))
		}
	}
	return event.Merge(segs...)
}

// LastSeq returns the sequence number of the most recently recorded
// event (0 when nothing was recorded yet).
func (db *DB) LastSeq() int64 { return db.nextSeq.Load() }

// Total returns the number of events ever recorded.
func (db *DB) Total() int64 { return db.total.Load() }

// SegmentLen returns the number of events currently buffered across
// all shards.
func (db *DB) SegmentLen() int {
	_, shards, unlock := db.lockAllShards()
	defer unlock()
	n := 0
	for _, s := range shards {
		n += len(s.segment)
	}
	return n
}

// Shards reports how many shards the database currently holds (one per
// monitor seen so far; 1 at most under WithGlobalLock).
func (db *DB) Shards() int {
	db.shardMu.RLock()
	defer db.shardMu.RUnlock()
	return len(db.shards)
}

// Full returns a copy of the complete trace in global sequence order.
// It returns nil unless the database was built with WithFullTrace.
// Every shard lock is held while copying, so a Full taken mid-run is
// a consistent prefix of the run — it never contains an event while
// missing a lower-numbered one.
func (db *DB) Full() event.Seq {
	if !db.keepFull {
		return nil
	}
	_, shards, unlock := db.lockAllShards()
	defer unlock()
	fulls := make([]event.Seq, 0, len(shards))
	for _, s := range shards {
		if len(s.full) > 0 {
			// Merge copies, so the live per-shard traces are safe to pass.
			fulls = append(fulls, event.Seq(s.full))
		}
	}
	return event.Merge(fulls...)
}

// KeepsFull reports whether the database retains the complete trace.
func (db *DB) KeepsFull() bool { return db.keepFull }

// AppendState records a checkpoint snapshot — §4's database "consists
// of the scheduling event sequence recorded during monitor operation
// AND the checking lists generated at the checking points". The
// detector records each monitor's frozen snapshot here so offline
// tooling can reconstruct the exact checkpoint boundaries.
//
// Snapshots are only retained when the database keeps the full trace;
// in the space-efficient configuration they are discarded like drained
// segments.
func (db *DB) AppendState(snap state.Snapshot) {
	if !db.keepFull {
		return
	}
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	db.states = append(db.states, snap.Clone())
}

// States returns the recorded checkpoint snapshots in order (nil
// without WithFullTrace). Within one HoldWorld checkpoint the per-
// monitor snapshots appear in detector monitor order; in per-monitor
// checkpoint mode they appear in completion order.
func (db *DB) States() []state.Snapshot {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	out := make([]state.Snapshot, 0, len(db.states))
	for _, s := range db.states {
		out = append(out, s.Clone())
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// LastState returns the most recent checkpoint snapshot for the named
// monitor, if one was recorded.
func (db *DB) LastState(monitorName string) (state.Snapshot, bool) {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	for i := len(db.states) - 1; i >= 0; i-- {
		if db.states[i].Monitor == monitorName {
			return db.states[i].Clone(), true
		}
	}
	return state.Snapshot{}, false
}

// ExportJSON writes the full trace as JSON Lines. It requires
// WithFullTrace.
func (db *DB) ExportJSON(w io.Writer) error {
	return event.WriteJSON(w, db.Full())
}

// ExportBinary writes the full trace in the binary format. It requires
// WithFullTrace.
func (db *DB) ExportBinary(w io.Writer) error {
	return event.WriteBinary(w, db.Full())
}
