package history

import "robustmon/internal/obs"

// Instrumentation. The database self-reports through internal/obs:
// WithObs hands it a registry and every layer of the record path
// counts itself — appends and batch publications at event rhythm,
// slab-pool traffic and drain sizes at drain rhythm. Without WithObs
// the handles are nil and every update is a nil-safe no-op (obs's
// off switch), so the uninstrumented hot path pays only a predicted
// branch per counter; the E7 benchmark (monbench -obsoverhead) gates
// the instrumented cost.

// histMetrics are the database's obs handles; the zero value (all
// nil) is the disabled mode. Shards hold a pointer to the DB's copy,
// so shard-side updates never touch the DB struct's hot cache lines
// beyond the counters themselves.
type histMetrics struct {
	// appends counts singleton Append calls; batches and batchEvents
	// count AppendBatch publications and the events they carried.
	appends, batches, batchEvents *obs.Counter
	// poolHit/poolMiss count drain-rhythm slab requests served from
	// the segment pool vs freshly allocated (requests outside the
	// pooled classes count as neither); recycles counts slabs actually
	// returned to the pool.
	poolHit, poolMiss, recycles *obs.Counter
	// drainEvents is the distribution of drained-segment sizes, the
	// shape the checkpoint cadence and batch knobs are tuned against.
	drainEvents *obs.Histogram
}

func newHistMetrics(reg *obs.Registry) histMetrics {
	if reg == nil {
		return histMetrics{}
	}
	return histMetrics{
		appends:     reg.Counter("history_append_total"),
		batches:     reg.Counter("history_append_batch_total"),
		batchEvents: reg.Counter("history_append_batch_events_total"),
		poolHit:     reg.Counter("history_pool_hit_total"),
		poolMiss:    reg.Counter("history_pool_miss_total"),
		recycles:    reg.Counter("history_slab_recycle_total"),
		drainEvents: reg.Histogram("history_drain_events"),
	}
}

// WithObs instruments the database on the given registry (see
// internal/obs): history_append_total, history_append_batch_total,
// history_append_batch_events_total, history_pool_hit_total,
// history_pool_miss_total, history_slab_recycle_total and the
// history_drain_events histogram. Nil disables at zero cost.
func WithObs(reg *obs.Registry) Option {
	return func(db *DB) { db.met = newHistMetrics(reg) }
}
