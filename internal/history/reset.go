package history

import (
	"time"

	"robustmon/internal/event"
)

// RecoveryMarker records one shard-local online reset — the recovery
// manager's answer to the paper's §5 future-work ask that "error
// recovery mechanisms should be incorporated into the model". When a
// violation triggers the ResetMonitor policy, the detector freezes only
// the offending monitor, discards its buffered (never checked, never
// exported) events via DB.ResetMonitor, reinitialises the monitor and
// its checking state, and emits one of these markers through the export
// pipeline so offline replay knows a reset horizon exists: the named
// monitor's exported trace may be missing events at or below Horizon
// (they were discarded unreplayed), so calling-order or pairing
// violations straddling the horizon can be artefacts of the reset, not
// of the monitored program.
//
// The marker is defined here — not in internal/export — because it
// annotates the history stream itself: detect creates it, export
// persists and replays it, and cmd/montrace renders it, without detect
// ever importing export.
type RecoveryMarker struct {
	// Monitor names the monitor that was reset.
	Monitor string
	// Horizon is the database's global sequence number at the instant
	// the monitor was frozen for the reset. Every event of this monitor
	// with Seq ≤ Horizon was either already drained (checked and
	// exported) or discarded by the reset; events recorded after the
	// thaw have Seq > Horizon and belong to the monitor's fresh life.
	Horizon int64
	// Dropped is how many buffered events the reset discarded without
	// replaying or exporting them — the size of the gap the marker
	// announces.
	Dropped int
	// Rule is the violated rule that triggered the reset (the string
	// form of rules.ID; history does not import rules).
	Rule string
	// Pid is the offending process of the triggering violation, 0 when
	// the violation named none.
	Pid int64
	// At is the instant the reset was applied.
	At time.Time
}

// ResetMonitor discards the named monitor's buffered (not yet drained)
// events and restarts its cumulative event counter from zero — the
// history half of a shard-local recovery reset. It returns how many
// events were discarded.
//
// Only the one shard is touched; appends and drains on every other
// monitor proceed untouched, which is what makes the recovery path
// world-stop free. The discarded events are deliberately NOT fed to the
// drain tees: they were never checked, and exporting them would make
// the offline trace claim a history the detector never replayed — the
// RecoveryMarker the caller emits records the gap instead. A full trace
// retained under WithFullTrace is also kept intact: it records what the
// monitors did, and the reset abandons only the unchecked segment.
//
// The counter restart is what re-seeds the adaptive scheduler: its next
// Observe sees a negative delta, clamps the sample to zero and
// re-learns the monitor's rate from its fresh life (detect additionally
// calls sched.Reset so the interval re-arms eagerly).
func (db *DB) ResetMonitor(monitor string) int {
	s := db.shardFor(monitor)
	s.mu.Lock()
	defer s.mu.Unlock()
	if db.global {
		// The shared legacy shard interleaves monitors: filter out only
		// the named monitor's events and keep the rest buffered.
		var rest []event.Event
		dropped := 0
		for _, e := range s.segment {
			if e.Monitor == monitor {
				dropped++
			} else {
				rest = append(rest, e)
			}
		}
		s.segment = rest
		db.counterFor(monitor).n.Store(0)
		return dropped
	}
	dropped := len(s.segment)
	// Truncate in place: nothing is handed out, so the slab (and its
	// retained capacity) stays with the shard. The stale entries beyond
	// the new length are overwritten by the monitor's fresh life.
	s.segment = s.segment[:0]
	s.counter.n.Store(0)
	return dropped
}
