package history

import (
	"testing"

	"robustmon/internal/event"
)

// ResetMonitor under WithGlobalLock: the legacy single shard
// interleaves every monitor's events, so the reset must filter out
// exactly the named monitor's buffered events and leave everything
// else queued — the sharded path was pinned when online recovery
// landed; this pins the global-lock path it special-cases.
func TestResetMonitorGlobalLockDropsOnlyNamedMonitor(t *testing.T) {
	t.Parallel()
	db := New(WithGlobalLock())
	for i := 0; i < 4; i++ {
		db.Append(mev("a", int64(i+1)))
		db.Append(mev("b", int64(i+10)))
	}
	db.Append(mev("a", 99))

	if got := db.ResetMonitor("a"); got != 5 {
		t.Fatalf("ResetMonitor dropped %d events, want 5", got)
	}
	if got := db.EventCount("a"); got != 0 {
		t.Fatalf("EventCount(a) = %d after reset, want 0 (counter restarts)", got)
	}
	if got := db.EventCount("b"); got != 4 {
		t.Fatalf("EventCount(b) = %d, want 4 (untouched)", got)
	}
	seg := db.Drain()
	if len(seg) != 4 {
		t.Fatalf("Drain returned %d events, want b's 4", len(seg))
	}
	for _, e := range seg {
		if e.Monitor != "a" {
			continue
		}
		t.Fatalf("reset monitor's event survived in the shared shard: %+v", e)
	}
	// The global sequence and lifetime total keep counting: a reset
	// discards buffered events, it does not rewrite history.
	if db.LastSeq() != 9 || db.Total() != 9 {
		t.Fatalf("LastSeq=%d Total=%d after reset, want 9,9", db.LastSeq(), db.Total())
	}
	// Fresh-life events keep claiming ascending sequence numbers.
	if got := db.Append(mev("a", 100)); got.Seq != 10 {
		t.Fatalf("post-reset append got seq %d, want 10", got.Seq)
	}
}

func TestResetMonitorGlobalLockDoesNotFeedTees(t *testing.T) {
	t.Parallel()
	var teed []string
	db := New(WithGlobalLock(), WithDrainTee(func(monitor string, seg event.Seq) {
		teed = append(teed, monitor)
	}))
	db.Append(mev("a", 1))
	db.Append(mev("b", 2))
	db.ResetMonitor("a")
	if len(teed) != 0 {
		t.Fatalf("reset fed the drain tees (%v); discarded events were never checked and must not be exported", teed)
	}
	db.Drain()
	if len(teed) != 1 || teed[0] != "b" {
		t.Fatalf("post-reset drain teed %v, want only monitor b's segment", teed)
	}
}

func TestResetMonitorGlobalLockKeepsFullTrace(t *testing.T) {
	t.Parallel()
	db := New(WithGlobalLock(), WithFullTrace())
	db.Append(mev("a", 1))
	db.Append(mev("b", 2))
	db.Append(mev("a", 3))
	db.ResetMonitor("a")
	full := db.Full()
	if len(full) != 3 {
		t.Fatalf("full trace has %d events after reset, want 3 — the reset abandons only the unchecked segment", len(full))
	}
}
