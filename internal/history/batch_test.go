package history

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"robustmon/internal/event"
)

// apFor appends one Enter event for the named monitor and returns its
// assigned sequence number.
func apFor(db *DB, mon string) int64 {
	e := db.Append(event.Event{Monitor: mon, Type: event.Enter, Time: time.Unix(0, 0)})
	return e.Seq
}

func TestEventCountPerMonitor(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if global {
				opts = append(opts, WithGlobalLock())
			}
			db := New(opts...)
			for i := 0; i < 5; i++ {
				apFor(db, "a")
			}
			for i := 0; i < 3; i++ {
				apFor(db, "b")
			}
			if got := db.EventCount("a"); got != 5 {
				t.Fatalf("EventCount(a) = %d, want 5", got)
			}
			if got := db.EventCount("b"); got != 3 {
				t.Fatalf("EventCount(b) = %d, want 3", got)
			}
			if got := db.EventCount("never-seen"); got != 0 {
				t.Fatalf("EventCount(never-seen) = %d, want 0", got)
			}
			// Draining must not rewind the cumulative counters: the
			// scheduler's rate estimator differences them across ticks.
			db.Drain()
			if got := db.EventCount("a"); got != 5 {
				t.Fatalf("EventCount(a) after drain = %d, want 5", got)
			}
		})
	}
}

func TestDrainMonitorUpToBatches(t *testing.T) {
	t.Parallel()
	for _, global := range []bool{false, true} {
		global := global
		t.Run(fmt.Sprintf("global=%v", global), func(t *testing.T) {
			t.Parallel()
			var opts []Option
			if global {
				opts = append(opts, WithGlobalLock())
			}
			db := New(opts...)
			// Interleave two monitors so the global-lock filter path is
			// exercised: a b a b a b a b a b.
			var aSeqs []int64
			for i := 0; i < 5; i++ {
				aSeqs = append(aSeqs, apFor(db, "a"))
				apFor(db, "b")
			}
			horizon := aSeqs[3] // four of a's five events are ≤ horizon

			var drained []int64
			batches := 0
			for {
				seg, more := db.DrainMonitorUpTo("a", horizon, 3)
				batches++
				for _, e := range seg {
					if e.Monitor != "a" {
						t.Fatalf("drained foreign event %+v", e)
					}
					if e.Seq > horizon {
						t.Fatalf("drained event %d beyond horizon %d", e.Seq, horizon)
					}
					drained = append(drained, e.Seq)
				}
				if !more {
					break
				}
			}
			// Sharded shards honour max (2 batches of ≤3); the global-lock
			// shard drains its whole eligible set in one filter pass.
			wantBatches := 2
			if global {
				wantBatches = 1
			}
			if batches != wantBatches {
				t.Fatalf("drained 4 events in %d batches, want %d", batches, wantBatches)
			}
			for i, s := range drained {
				if s != aSeqs[i] {
					t.Fatalf("drained[%d] = seq %d, want %d", i, s, aSeqs[i])
				}
			}
			// The fifth a-event (beyond the horizon) and all of b's events
			// must still be buffered.
			rest := db.Drain()
			if len(rest) != 6 {
				t.Fatalf("left %d events buffered, want 6 (1 of a + 5 of b)", len(rest))
			}
			for _, e := range rest {
				if e.Monitor == "a" && e.Seq <= horizon {
					t.Fatalf("event %d of a should have been drained", e.Seq)
				}
			}
		})
	}
}

func TestDrainMonitorUpToNoBound(t *testing.T) {
	t.Parallel()
	db := New()
	for i := 0; i < 7; i++ {
		apFor(db, "a")
	}
	seg, more := db.DrainMonitorUpTo("a", db.LastSeq(), 0)
	if len(seg) != 7 || more {
		t.Fatalf("unbounded drain: %d events, more=%v; want 7, false", len(seg), more)
	}
}

func TestDrainMonitorUpToFeedsTees(t *testing.T) {
	t.Parallel()
	db := New()
	var mu sync.Mutex
	var teed []int64
	db.AddDrainTee(func(mon string, seg event.Seq) {
		mu.Lock()
		defer mu.Unlock()
		if mon != "a" {
			t.Errorf("tee saw monitor %q", mon)
		}
		for _, e := range seg {
			teed = append(teed, e.Seq)
		}
	})
	for i := 0; i < 6; i++ {
		apFor(db, "a")
	}
	for {
		if _, more := db.DrainMonitorUpTo("a", db.LastSeq(), 4); !more {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(teed) != 6 {
		t.Fatalf("tee observed %d events, want 6", len(teed))
	}
	for i, s := range teed {
		if s != int64(i+1) {
			t.Fatalf("tee order broken: teed[%d] = %d", i, s)
		}
	}
}

// TestEventCountConcurrentWithDrains hammers counters, appends and
// batched drains together under -race: EventCount must be readable at
// any instant without tearing.
func TestEventCountConcurrentWithDrains(t *testing.T) {
	t.Parallel()
	db := New()
	const mons = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for m := 0; m < mons; m++ {
		name := fmt.Sprintf("m%d", m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				apFor(db, name)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					db.EventCount(name)
					db.DrainMonitorUpTo(name, db.LastSeq(), 16)
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	total := int64(0)
	for m := 0; m < mons; m++ {
		total += db.EventCount(fmt.Sprintf("m%d", m))
	}
	if total != mons*500 {
		t.Fatalf("counters sum to %d, want %d", total, mons*500)
	}
}
